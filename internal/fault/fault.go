// Package fault injects deterministic, seeded faults into the AMP
// scheduling stack: noisy/dropped/stale hardware-monitor samples,
// failed or delayed swap reconfigurations, and corrupted trace bytes.
//
// Real asymmetric multicores do not have the perfect monitors and
// always-successful reconfigurations the paper assumes — counters are
// sampled asynchronously, reconfiguration requests race with power
// management, and trace capture hardware drops or mangles records. A
// Plan models those failure modes as explicit, reproducible
// perturbations so the schedulers' degradation can be measured rather
// than guessed at.
//
// Everything is driven by SplitMix64 streams derived from a single
// seed, one independent stream per subsystem, so that identical
// (seed, Config) inputs produce bit-identical fault sequences — and
// therefore bit-identical simulation results — across runs, platforms
// and goroutine schedules.
package fault

import (
	"fmt"

	"ampsched/internal/amp"
	"ampsched/internal/monitor"
	"ampsched/internal/rng"
)

// DefaultSwapDelayFactor multiplies the swap overhead when a swap is
// delayed rather than dropped.
const DefaultSwapDelayFactor = 8

// Config describes a fault plan. All rates are probabilities in
// [0, 1]; a zero-valued Config injects nothing.
type Config struct {
	// Seed drives every stream of the plan. Two plans with equal Seed
	// and rates produce identical fault sequences.
	Seed uint64

	// SampleDropRate is the probability that a closed monitor window
	// is lost before the scheduler sees it (the counter read misses
	// the sampling deadline).
	SampleDropRate float64
	// SampleStaleRate is the probability that a closed window is
	// replaced by the previous window's sample (a stale counter
	// snapshot).
	SampleStaleRate float64
	// SampleNoisePct perturbs each delivered sample's IntPct/FPPct by
	// a uniform offset in [-SampleNoisePct, +SampleNoisePct]
	// percentage points (counter skew), clamped to [0, 100].
	SampleNoisePct float64

	// SwapFailRate is the probability that a requested swap is
	// silently dropped by the reconfiguration controller.
	SwapFailRate float64
	// SwapDelayRate is the probability that a surviving swap costs
	// SwapDelayFactor times the configured overhead.
	SwapDelayRate float64
	// SwapDelayFactor is the overhead multiplier for delayed swaps
	// (0 means DefaultSwapDelayFactor).
	SwapDelayFactor float64

	// TraceCorruptRate is the expected fraction of trace-stream bytes
	// flipped by CorruptBytes.
	TraceCorruptRate float64
}

// Uniform is the one-knob plan used by the resilience experiment:
// every fault class fires at the given rate. Monitor noise scales to
// rate*20 percentage points; the delay factor stays at the default.
func Uniform(rate float64, seed uint64) Config {
	return Config{
		Seed:             seed,
		SampleDropRate:   rate,
		SampleStaleRate:  rate,
		SampleNoisePct:   rate * 20,
		SwapFailRate:     rate,
		SwapDelayRate:    rate,
		TraceCorruptRate: rate,
	}
}

// Validate reports the first out-of-range knob.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"SampleDropRate", c.SampleDropRate},
		{"SampleStaleRate", c.SampleStaleRate},
		{"SwapFailRate", c.SwapFailRate},
		{"SwapDelayRate", c.SwapDelayRate},
		{"TraceCorruptRate", c.TraceCorruptRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s %g outside [0, 1]", r.name, r.v)
		}
	}
	if c.SampleNoisePct < 0 || c.SampleNoisePct > 100 {
		return fmt.Errorf("fault: SampleNoisePct %g outside [0, 100]", c.SampleNoisePct)
	}
	if c.SwapDelayFactor < 0 {
		return fmt.Errorf("fault: negative SwapDelayFactor %g", c.SwapDelayFactor)
	}
	return nil
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.SampleDropRate > 0 || c.SampleStaleRate > 0 || c.SampleNoisePct > 0 ||
		c.SwapFailRate > 0 || c.SwapDelayRate > 0 || c.TraceCorruptRate > 0
}

// Stats counts the faults a plan actually injected.
type Stats struct {
	SamplesDropped uint64
	SamplesStale   uint64
	SamplesNoised  uint64
	SwapsFailed    uint64
	SwapsDelayed   uint64
	BytesCorrupted uint64
}

// Stream-derivation tags. Each subsystem's stream seed is the plan
// seed mixed (via one SplitMix64 step) with a fixed tag, so streams
// are mutually independent and adding a subsystem never shifts the
// draws of an existing one.
const (
	tagSwap     = 0x5157_4150 // "SWAP"
	tagTrace    = 0x5452_4143 // "TRAC"
	tagObserver = 0x4f42_5356 // "OBSV"
)

// streamSeed derives the seed of one subsystem stream.
func streamSeed(seed, tag uint64) uint64 {
	return rng.New(seed ^ tag).Uint64()
}

// Plan is an instantiated fault plan: the per-subsystem streams plus
// injection counters. A Plan is not safe for concurrent use; build
// one per simulated system (they are cheap).
type Plan struct {
	cfg      Config
	swapRng  *rng.Source
	traceRng *rng.Source
	stats    Stats
	tel      planTel
}

// New validates cfg and instantiates its streams.
func New(cfg Config) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SwapDelayFactor == 0 {
		cfg.SwapDelayFactor = DefaultSwapDelayFactor
	}
	return &Plan{
		cfg:      cfg,
		swapRng:  rng.New(streamSeed(cfg.Seed, tagSwap)),
		traceRng: rng.New(streamSeed(cfg.Seed, tagTrace)),
	}, nil
}

// MustNew is New panicking on error, for statically valid configs.
func MustNew(cfg Config) *Plan {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the plan's (defaults-resolved) configuration.
func (p *Plan) Config() Config { return p.cfg }

// Stats returns the faults injected so far.
func (p *Plan) Stats() Stats { return p.stats }

// SwapOutcome implements amp.SwapInjector: each requested swap may be
// dropped or delayed. Draw order is fixed (fail, then delay) so the
// sequence is a pure function of the seed and the request count.
func (p *Plan) SwapOutcome(cycle uint64) amp.SwapOutcome {
	if p.cfg.SwapFailRate > 0 && p.swapRng.Bool(p.cfg.SwapFailRate) {
		p.stats.SwapsFailed++
		p.tel.swapFails.Inc()
		p.tel.event(cycle, "swap_fail")
		return amp.SwapOutcome{Fail: true}
	}
	if p.cfg.SwapDelayRate > 0 && p.swapRng.Bool(p.cfg.SwapDelayRate) {
		p.stats.SwapsDelayed++
		p.tel.swapDelays.Inc()
		p.tel.event(cycle, "swap_delay")
		return amp.SwapOutcome{OverheadFactor: p.cfg.SwapDelayFactor}
	}
	return amp.SwapOutcome{}
}

var _ amp.SwapInjector = (*Plan)(nil)

// Observer wraps a monitor observer with this plan's sample faults.
// tag distinguishes multiple observers of one plan (e.g. the per-core
// trackers of a scheduler): each gets an independent stream, so the
// same physical window sees uncorrelated faults on the two cores.
func (p *Plan) Observer(inner monitor.Observer, tag uint64) *FaultyObserver {
	return &FaultyObserver{
		inner: inner,
		cfg:   p.cfg,
		rng:   rng.New(streamSeed(p.cfg.Seed, tagObserver+tag<<8)),
		stats: &p.stats,
		tel:   &p.tel,
	}
}

// CorruptBytes flips bits in b at the plan's TraceCorruptRate and
// returns the number of bytes touched. Corruption positions are drawn
// by geometric gap sampling, so the cost is proportional to the number
// of faults, not the buffer size.
func (p *Plan) CorruptBytes(b []byte) int {
	rate := p.cfg.TraceCorruptRate
	if rate <= 0 || len(b) == 0 {
		return 0
	}
	mean := 1 / rate
	n := 0
	for i := p.traceRng.Geometric(mean) - 1; i < len(b); i += p.traceRng.Geometric(mean) {
		b[i] ^= byte(1 + p.traceRng.Intn(255)) // never a zero mask
		n++
	}
	p.stats.BytesCorrupted += uint64(n)
	p.tel.corrupted.Add(uint64(n))
	return n
}
