package fault

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"ampsched/internal/rng"
	"ampsched/internal/telemetry"
)

// This file extends the fault layer from simulated-hardware faults
// (Plan) to service-level faults (ServicePlan): the failure modes a
// long-running ampserve daemon meets — disk write errors and torn
// writes into the WAL and result cache, slow I/O, stalled workers, and
// outright panics inside a job. The chaos harness (`make chaos-smoke`,
// cmd/ampchaos) drives the service under a ServicePlan, kill -9s it
// mid-load, and asserts that recovery loses nothing.
//
// Like Plan, everything is seeded and deterministic per draw sequence;
// unlike Plan, a ServicePlan is shared by concurrent workers and HTTP
// handlers, so its stream is guarded by a mutex (the draw order then
// depends on goroutine interleaving — fine: service chaos perturbs
// timing by design, and the simulation results themselves stay
// bit-identical because simulation draws never come from this stream).

// ErrInjectedDisk marks an injected disk fault (write error or torn
// write). Matched with errors.Is by layers that must distinguish chaos
// from real disk failure in tests.
var ErrInjectedDisk = errors.New("fault: injected disk error")

// ErrInjectedPanic is the value an injected panic carries. The job
// queue recovers worker panics into job errors; the server classifies
// this one as retryable, so a chaos-panicked job re-runs.
var ErrInjectedPanic = errors.New("fault: injected panic")

// ServiceConfig describes a service-level fault plan. All rates are
// probabilities in [0, 1]; a zero-valued config injects nothing.
type ServiceConfig struct {
	// Seed drives the plan's draw stream.
	Seed uint64

	// DiskErrRate is the probability that a journal or cache write
	// fails outright (nothing written, error returned).
	DiskErrRate float64
	// TornWriteRate is the probability that a journal or cache write is
	// torn: a strict prefix hits the disk and the write errors — the
	// kill -9 failure mode, surfaced while the process is still alive
	// so the retry/resync paths run under test.
	TornWriteRate float64
	// SlowIORate is the probability that a disk write stalls for
	// SlowIODelay before succeeding.
	SlowIORate float64
	// SlowIODelay is the injected I/O stall (0 = 2ms).
	SlowIODelay time.Duration
	// StallRate is the probability that a worker stalls for StallDelay
	// before starting a job.
	StallRate float64
	// StallDelay is the injected worker stall (0 = 20ms).
	StallDelay time.Duration
	// PanicRate is the probability that a job attempt panics at start
	// (recovered by the queue into a retryable job error).
	PanicRate float64
}

// Validate reports the first out-of-range knob.
func (c ServiceConfig) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"DiskErrRate", c.DiskErrRate},
		{"TornWriteRate", c.TornWriteRate},
		{"SlowIORate", c.SlowIORate},
		{"StallRate", c.StallRate},
		{"PanicRate", c.PanicRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s %g outside [0, 1]", r.name, r.v)
		}
	}
	if c.SlowIODelay < 0 || c.StallDelay < 0 {
		return fmt.Errorf("fault: negative delay")
	}
	return nil
}

// Enabled reports whether the config injects any fault at all.
func (c ServiceConfig) Enabled() bool {
	return c.DiskErrRate > 0 || c.TornWriteRate > 0 || c.SlowIORate > 0 ||
		c.StallRate > 0 || c.PanicRate > 0
}

// UniformService is the one-knob plan used by the chaos harness:
// disk errors, torn writes and slow I/O fire at the given rate, worker
// stalls at rate and panics at rate/4 (a panic costs a whole retry, so
// it is kept rarer than the recoverable faults).
func UniformService(rate float64, seed uint64) ServiceConfig {
	return ServiceConfig{
		Seed:          seed,
		DiskErrRate:   rate,
		TornWriteRate: rate,
		SlowIORate:    rate,
		StallRate:     rate,
		PanicRate:     rate / 4,
	}
}

// ServiceStats counts the faults a plan actually injected.
type ServiceStats struct {
	DiskErrs   uint64
	TornWrites uint64
	SlowIOs    uint64
	Stalls     uint64
	Panics     uint64
}

// ServicePlan is an instantiated service fault plan. Safe for
// concurrent use; build one per daemon.
type ServicePlan struct {
	cfg ServiceConfig

	mu    sync.Mutex
	rng   *rng.Source
	stats ServiceStats

	diskErrs   *telemetry.Counter
	tornWrites *telemetry.Counter
	slowIOs    *telemetry.Counter
	stalls     *telemetry.Counter
	panics     *telemetry.Counter
}

// tagService derives the service stream independently of the
// simulation streams.
const tagService = 0x5352_5643 // "SRVC"

// NewService validates cfg and instantiates the plan.
func NewService(cfg ServiceConfig) (*ServicePlan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SlowIODelay == 0 {
		cfg.SlowIODelay = 2 * time.Millisecond
	}
	if cfg.StallDelay == 0 {
		cfg.StallDelay = 20 * time.Millisecond
	}
	return &ServicePlan{
		cfg: cfg,
		rng: rng.New(streamSeed(cfg.Seed, tagService)),
	}, nil
}

// SetTelemetry publishes injections into t: counters
// "fault.{disk_errs,torn_writes,slow_ios,worker_stalls,injected_panics}".
// A nil t disables publication again.
func (p *ServicePlan) SetTelemetry(t *telemetry.Telemetry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if t == nil {
		p.diskErrs, p.tornWrites, p.slowIOs, p.stalls, p.panics = nil, nil, nil, nil, nil
		return
	}
	p.diskErrs = t.Counter("fault.disk_errs")
	p.tornWrites = t.Counter("fault.torn_writes")
	p.slowIOs = t.Counter("fault.slow_ios")
	p.stalls = t.Counter("fault.worker_stalls")
	p.panics = t.Counter("fault.injected_panics")
}

// Config returns the plan's (defaults-resolved) configuration.
func (p *ServicePlan) Config() ServiceConfig { return p.cfg }

// Stats returns the faults injected so far.
func (p *ServicePlan) Stats() ServiceStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// diskFault draws one disk outcome for a write of n bytes. It returns
// the bytes to keep, an error to report, and a stall to sleep — draw
// order is fixed (error, torn, slow).
func (p *ServicePlan) diskFault(n int) (keep int, err error, stall time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cfg.DiskErrRate > 0 && p.rng.Bool(p.cfg.DiskErrRate) {
		p.stats.DiskErrs++
		p.diskErrs.Inc()
		return 0, fmt.Errorf("%w: write refused", ErrInjectedDisk), 0
	}
	if p.cfg.TornWriteRate > 0 && p.rng.Bool(p.cfg.TornWriteRate) && n > 1 {
		p.stats.TornWrites++
		p.tornWrites.Inc()
		keep = 1 + p.rng.Intn(n-1) // a strict, non-empty prefix
		return keep, fmt.Errorf("%w: torn write (%d of %d bytes)", ErrInjectedDisk, keep, n), 0
	}
	if p.cfg.SlowIORate > 0 && p.rng.Bool(p.cfg.SlowIORate) {
		p.stats.SlowIOs++
		p.slowIOs.Inc()
		return n, nil, p.cfg.SlowIODelay
	}
	return n, nil, 0
}

// WALWriteHook adapts the plan to the wal.Options.WriteHook seam: it
// decides per append whether the frame is written whole, torn, refused
// or delayed.
func (p *ServicePlan) WALWriteHook() func(frame []byte) (int, error) {
	return func(frame []byte) (int, error) {
		keep, err, stall := p.diskFault(len(frame))
		if stall > 0 {
			time.Sleep(stall)
		}
		return keep, err
	}
}

// WriteFile is a drop-in for os.WriteFile with this plan's disk faults
// applied: a refused write touches nothing, a torn write persists a
// prefix (and errors — callers using tmp+rename then never promote the
// torn file), slow I/O sleeps before succeeding.
func (p *ServicePlan) WriteFile(name string, data []byte, perm os.FileMode) error {
	keep, ferr, stall := p.diskFault(len(data))
	if stall > 0 {
		time.Sleep(stall)
	}
	if keep == 0 && ferr != nil {
		return ferr
	}
	if err := os.WriteFile(name, data[:keep], perm); err != nil {
		return err
	}
	return ferr
}

// MaybeStall sleeps the configured worker stall with probability
// StallRate (bounded by ctx via a plain sleep slice: stalls are short).
func (p *ServicePlan) MaybeStall() {
	p.mu.Lock()
	fire := p.cfg.StallRate > 0 && p.rng.Bool(p.cfg.StallRate)
	if fire {
		p.stats.Stalls++
		p.stalls.Inc()
	}
	d := p.cfg.StallDelay
	p.mu.Unlock()
	if fire {
		time.Sleep(d)
	}
}

// MaybePanic panics with probability PanicRate, carrying
// ErrInjectedPanic so the recovery layer can classify it.
func (p *ServicePlan) MaybePanic() {
	p.mu.Lock()
	fire := p.cfg.PanicRate > 0 && p.rng.Bool(p.cfg.PanicRate)
	if fire {
		p.stats.Panics++
		p.panics.Inc()
	}
	p.mu.Unlock()
	if fire {
		panic(ErrInjectedPanic)
	}
}
