package fault

import (
	"ampsched/internal/cpu"
	"ampsched/internal/monitor"
	"ampsched/internal/rng"
)

// FaultyObserver perturbs the samples of an inner monitor.Observer
// before a scheduler sees them: whole windows may be dropped (the
// counter read missed its deadline), replaced by the previous window's
// values (a stale snapshot), or delivered with skewed composition
// percentages (counter noise).
//
// The draw order per closed inner window is fixed — drop, then stale,
// then two noise offsets — so the fault sequence is a pure function of
// the stream seed and the sequence of closed windows.
type FaultyObserver struct {
	inner monitor.Observer
	cfg   Config
	rng   *rng.Source
	stats *Stats
	tel   *planTel // shared with the owning Plan; nil-safe

	latest monitor.Sample // what the scheduler last saw
	have   bool
	prev   monitor.Sample // previous delivered sample, served when stale
	hadOne bool
}

var _ monitor.Observer = (*FaultyObserver)(nil)

// Window implements monitor.Observer.
func (f *FaultyObserver) Window() uint64 { return f.inner.Window() }

// Reset implements monitor.Observer. The fault stream is deliberately
// NOT re-seeded: a mid-run Reset continues the plan's sequence.
func (f *FaultyObserver) Reset(arch *cpu.ThreadArch) {
	f.inner.Reset(arch)
	f.latest, f.have = monitor.Sample{}, false
	f.prev, f.hadOne = monitor.Sample{}, false
}

// Latest implements monitor.Observer: the most recent sample actually
// delivered (post-fault), not the tracker's ground truth.
func (f *FaultyObserver) Latest() (monitor.Sample, bool) { return f.latest, f.have }

// Observe implements monitor.Observer.
func (f *FaultyObserver) Observe(arch *cpu.ThreadArch) (monitor.Sample, bool) {
	s, ok := f.inner.Observe(arch)
	if !ok {
		return monitor.Sample{}, false
	}
	if f.cfg.SampleDropRate > 0 && f.rng.Bool(f.cfg.SampleDropRate) {
		f.stats.SamplesDropped++
		f.emit(func(pt *planTel) { pt.dropped.Inc(); pt.event(0, "sample_drop") })
		return monitor.Sample{}, false
	}
	if f.cfg.SampleStaleRate > 0 && f.rng.Bool(f.cfg.SampleStaleRate) && f.hadOne {
		f.stats.SamplesStale++
		f.emit(func(pt *planTel) { pt.stale.Inc(); pt.event(0, "sample_stale") })
		s = f.prev
		s.WindowEnd = arch.Committed // the timestamp still advances
	} else if f.cfg.SampleNoisePct > 0 {
		s.IntPct = clampPct(s.IntPct + (f.rng.Float64()*2-1)*f.cfg.SampleNoisePct)
		s.FPPct = clampPct(s.FPPct + (f.rng.Float64()*2-1)*f.cfg.SampleNoisePct)
		f.stats.SamplesNoised++
		f.emit(func(pt *planTel) { pt.noised.Inc() })
	}
	f.prev, f.hadOne = s, true
	f.latest, f.have = s, true
	return s, true
}

// emit runs fn against the owning plan's telemetry handles when wired.
func (f *FaultyObserver) emit(fn func(*planTel)) {
	if f.tel != nil {
		fn(f.tel)
	}
}

func clampPct(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}
