package fault

import (
	"bytes"
	"math"
	"testing"

	"ampsched/internal/cpu"
	"ampsched/internal/isa"
	"ampsched/internal/monitor"
)

// FuzzFaultPlan proves the determinism contract: two plans built from
// the same (seed, rates) tuple produce bit-identical fault sequences
// across every subsystem — swap outcomes, monitor sample streams, and
// trace corruption — regardless of the rate values.
func FuzzFaultPlan(f *testing.F) {
	f.Add(uint64(1), 0.1, 0.2, 5.0, 0.3, 0.1, 0.05)
	f.Add(uint64(42), 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(uint64(1<<60), 1.0, 1.0, 100.0, 1.0, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, seed uint64, drop, stale, noise, fail, delay, corrupt float64) {
		cfg := Config{
			Seed:             seed,
			SampleDropRate:   clamp01(drop),
			SampleStaleRate:  clamp01(stale),
			SampleNoisePct:   clamp01(noise/100) * 100,
			SwapFailRate:     clamp01(fail),
			SwapDelayRate:    clamp01(delay),
			TraceCorruptRate: clamp01(corrupt),
		}
		runOnce := func() ([]byte, Stats) {
			p, err := New(cfg)
			if err != nil {
				t.Fatalf("clamped config rejected: %v", err)
			}
			var log bytes.Buffer
			var arch cpu.ThreadArch
			obs := p.Observer(monitor.NewWindowTracker(100), 3)
			obs.Reset(&arch)
			for i := 0; i < 200; i++ {
				arch.Committed += 100
				if i%2 == 0 {
					arch.CommittedByClass[isa.IntALU] += 100
				} else {
					arch.CommittedByClass[isa.FPALU] += 100
				}
				if s, ok := obs.Observe(&arch); ok {
					fmtSample(&log, s)
				}
				out := p.SwapOutcome(uint64(i) * 997)
				log.WriteByte(boolByte(out.Fail))
				fmtFloat(&log, out.OverheadFactor)
			}
			buf := make([]byte, 4096)
			p.CorruptBytes(buf)
			log.Write(buf)
			return log.Bytes(), p.Stats()
		}
		l1, s1 := runOnce()
		l2, s2 := runOnce()
		if !bytes.Equal(l1, l2) {
			t.Fatalf("same-seed plans diverge (seed=%d cfg=%+v)", seed, cfg)
		}
		if s1 != s2 {
			t.Fatalf("same-seed stats diverge: %+v vs %+v", s1, s2)
		}
	})
}

func clamp01(v float64) float64 {
	if !(v >= 0) { // NaN lands here too
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func fmtSample(buf *bytes.Buffer, s monitor.Sample) {
	fmtFloat(buf, float64(s.WindowEnd))
	fmtFloat(buf, s.IntPct)
	fmtFloat(buf, s.FPPct)
}

func fmtFloat(buf *bytes.Buffer, v float64) {
	var b [8]byte
	u := math.Float64bits(v)
	for i := range b {
		b[i] = byte(u >> (8 * i))
	}
	buf.Write(b[:])
}
