package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestServiceConfigValidate(t *testing.T) {
	if err := (ServiceConfig{DiskErrRate: 1.5}).Validate(); err == nil {
		t.Error("out-of-range DiskErrRate accepted")
	}
	if err := (ServiceConfig{SlowIODelay: -1}).Validate(); err == nil {
		t.Error("negative delay accepted")
	}
	if err := UniformService(0.3, 1).Validate(); err != nil {
		t.Errorf("UniformService invalid: %v", err)
	}
	if (ServiceConfig{}).Enabled() {
		t.Error("zero config reports Enabled")
	}
	if !UniformService(0.1, 1).Enabled() {
		t.Error("uniform config reports disabled")
	}
}

// TestServicePlanDeterministicSequence: two plans with the same seed
// draw the identical fault sequence.
func TestServicePlanDeterministicSequence(t *testing.T) {
	mk := func() []int {
		p, err := NewService(UniformService(0.4, 99))
		if err != nil {
			t.Fatal(err)
		}
		var seq []int
		for i := 0; i < 200; i++ {
			keep, ferr, stall := p.diskFault(100)
			code := 0
			switch {
			case ferr != nil && keep == 0:
				code = 1
			case ferr != nil:
				code = 2
			case stall > 0:
				code = 3
			}
			seq = append(seq, code, keep)
		}
		return seq
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %d != %d", i, a[i], b[i])
		}
	}
}

func TestServicePlanInjectsEveryKind(t *testing.T) {
	p, err := NewService(UniformService(0.5, 7))
	if err != nil {
		t.Fatal(err)
	}
	hook := p.WALWriteHook()
	for i := 0; i < 300; i++ {
		if keep, err := hook(make([]byte, 64)); err != nil {
			if !errors.Is(err, ErrInjectedDisk) {
				t.Fatalf("hook error %v not ErrInjectedDisk", err)
			}
			if keep == 64 {
				t.Fatal("hook errored without dropping bytes")
			}
		}
	}
	st := p.Stats()
	if st.DiskErrs == 0 || st.TornWrites == 0 || st.SlowIOs == 0 {
		t.Errorf("after 300 draws at rate 0.5, stats = %+v; every disk kind should fire", st)
	}

	panics := 0
	for i := 0; i < 200; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if err, ok := r.(error); !ok || !errors.Is(err, ErrInjectedPanic) {
						t.Fatalf("panic value %v not ErrInjectedPanic", r)
					}
					panics++
				}
			}()
			p.MaybePanic()
		}()
		p.MaybeStall()
	}
	st = p.Stats()
	if panics == 0 || st.Panics != uint64(panics) || st.Stalls == 0 {
		t.Errorf("panics=%d stats=%+v; stall and panic kinds should fire", panics, st)
	}
}

// TestServiceWriteFile: a refused write leaves no file; a torn write
// persists only a prefix and errors, so tmp+rename callers never
// promote it.
func TestServiceWriteFile(t *testing.T) {
	dir := t.TempDir()
	p, err := NewService(ServiceConfig{Seed: 3, DiskErrRate: 0.5, TornWriteRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256)
	sawErr, sawTorn := false, false
	for i := 0; i < 100 && !(sawErr && sawTorn); i++ {
		path := filepath.Join(dir, "f")
		os.Remove(path)
		werr := p.WriteFile(path, data, 0o644)
		if werr == nil {
			got, rerr := os.ReadFile(path)
			if rerr != nil || len(got) != len(data) {
				t.Fatalf("clean write readback: %v, %d bytes", rerr, len(got))
			}
			continue
		}
		if !errors.Is(werr, ErrInjectedDisk) {
			t.Fatalf("unexpected error %v", werr)
		}
		got, rerr := os.ReadFile(path)
		if os.IsNotExist(rerr) {
			sawErr = true // refused outright
			continue
		}
		if rerr == nil && len(got) > 0 && len(got) < len(data) {
			sawTorn = true
			continue
		}
		t.Fatalf("errored write left %d bytes (read err %v)", len(got), rerr)
	}
	if !sawErr || !sawTorn {
		t.Errorf("sawErr=%v sawTorn=%v; both disk failure modes should appear", sawErr, sawTorn)
	}
}
