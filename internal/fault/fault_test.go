package fault

import (
	"bytes"
	"math"
	"testing"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/isa"
	"ampsched/internal/monitor"
)

func TestValidateRejectsBadRates(t *testing.T) {
	bad := []Config{
		{SampleDropRate: -0.1},
		{SampleStaleRate: 1.5},
		{SwapFailRate: 2},
		{SwapDelayRate: -1},
		{TraceCorruptRate: 1.01},
		{SampleNoisePct: 101},
		{SampleNoisePct: -5},
		{SwapDelayFactor: -2},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(Uniform(0.3, 42)); err != nil {
		t.Fatalf("valid uniform config rejected: %v", err)
	}
}

func TestUniformEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config claims to inject faults")
	}
	if !Uniform(0.01, 1).Enabled() {
		t.Fatal("uniform config claims to be a no-op")
	}
	if Uniform(0, 1).Enabled() {
		t.Fatal("rate-0 uniform config claims to inject faults")
	}
}

// drainSwaps collects n outcomes from a fresh plan with cfg.
func drainSwaps(cfg Config, n int) []amp.SwapOutcome {
	p := MustNew(cfg)
	out := make([]amp.SwapOutcome, n)
	for i := range out {
		out[i] = p.SwapOutcome(uint64(i) * 1000)
	}
	return out
}

func TestSwapOutcomeDeterministic(t *testing.T) {
	cfg := Uniform(0.25, 99)
	a := drainSwaps(cfg, 500)
	b := drainSwaps(cfg, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSwapOutcomeRates(t *testing.T) {
	cfg := Config{Seed: 7, SwapFailRate: 0.3, SwapDelayRate: 0.5}
	p := MustNew(cfg)
	const n = 20_000
	for i := 0; i < n; i++ {
		p.SwapOutcome(uint64(i))
	}
	st := p.Stats()
	failFrac := float64(st.SwapsFailed) / n
	if math.Abs(failFrac-0.3) > 0.02 {
		t.Fatalf("fail rate %.3f far from 0.3", failFrac)
	}
	// Delay fires on the surviving 70% at rate 0.5 -> ~0.35 overall.
	delayFrac := float64(st.SwapsDelayed) / n
	if math.Abs(delayFrac-0.35) > 0.02 {
		t.Fatalf("delay rate %.3f far from 0.35", delayFrac)
	}
	if got := MustNew(cfg).Config().SwapDelayFactor; got != DefaultSwapDelayFactor {
		t.Fatalf("delay factor default not applied: %g", got)
	}
}

// stepArch advances a thread-arch by one committed window of pure INT.
func stepArch(arch *cpu.ThreadArch, n uint64) {
	arch.Committed += n
	arch.CommittedByClass[isa.IntALU] += n
}

func TestFaultyObserverDropsAndNoises(t *testing.T) {
	cfg := Config{Seed: 5, SampleDropRate: 0.3, SampleNoisePct: 10}
	p := MustNew(cfg)
	var arch cpu.ThreadArch
	obs := p.Observer(monitor.NewWindowTracker(1000), 0)
	obs.Reset(&arch)

	delivered, windows := 0, 2000
	for i := 0; i < windows; i++ {
		stepArch(&arch, 1000)
		if s, ok := obs.Observe(&arch); ok {
			delivered++
			// Ground truth is 100% INT; noise keeps it within 10pp.
			if s.IntPct < 90 || s.IntPct > 100 {
				t.Fatalf("window %d IntPct %.1f outside noise envelope", i, s.IntPct)
			}
		}
	}
	st := p.Stats()
	if st.SamplesDropped == 0 {
		t.Fatal("no samples dropped at rate 0.3")
	}
	if delivered+int(st.SamplesDropped) != windows {
		t.Fatalf("delivered %d + dropped %d != windows %d", delivered, st.SamplesDropped, windows)
	}
	frac := float64(st.SamplesDropped) / float64(windows)
	if math.Abs(frac-0.3) > 0.05 {
		t.Fatalf("drop rate %.3f far from 0.3", frac)
	}
	if st.SamplesNoised == 0 {
		t.Fatal("no samples noised")
	}
}

func TestFaultyObserverStaleServesPrevious(t *testing.T) {
	cfg := Config{Seed: 11, SampleStaleRate: 1} // every window stale
	p := MustNew(cfg)
	var arch cpu.ThreadArch
	obs := p.Observer(monitor.NewWindowTracker(100), 0)
	obs.Reset(&arch)

	// First window: 100% INT. No previous sample exists, so it is
	// delivered as-is despite the stale draw.
	stepArch(&arch, 100)
	first, ok := obs.Observe(&arch)
	if !ok || first.IntPct != 100 {
		t.Fatalf("first window: %+v ok=%v", first, ok)
	}
	// Second window: 100% FP ground truth, but the stale fault must
	// serve the previous (INT) composition with an advanced timestamp.
	arch.Committed += 100
	arch.CommittedByClass[isa.FPALU] += 100
	s, ok := obs.Observe(&arch)
	if !ok {
		t.Fatal("stale window not delivered")
	}
	if s.IntPct != 100 || s.FPPct != 0 {
		t.Fatalf("stale sample not the previous one: %+v", s)
	}
	if s.WindowEnd != arch.Committed {
		t.Fatalf("stale sample timestamp not advanced: %d != %d", s.WindowEnd, arch.Committed)
	}
	if p.Stats().SamplesStale == 0 {
		t.Fatal("stale counter not advanced")
	}
	if l, have := obs.Latest(); !have || l != s {
		t.Fatalf("Latest %+v/%v disagrees with delivered %+v", l, have, s)
	}
}

func TestFaultyObserverZeroConfigTransparent(t *testing.T) {
	p := MustNew(Config{Seed: 3})
	var archA, archB cpu.ThreadArch
	plain := monitor.NewWindowTracker(500)
	wrapped := p.Observer(monitor.NewWindowTracker(500), 1)
	plain.Reset(&archA)
	wrapped.Reset(&archB)
	for i := 0; i < 50; i++ {
		stepArch(&archA, 137)
		stepArch(&archB, 137)
		sa, oka := plain.Observe(&archA)
		sb, okb := wrapped.Observe(&archB)
		if oka != okb || sa != sb {
			t.Fatalf("step %d: zero-config wrapper altered samples: %+v/%v vs %+v/%v",
				i, sa, oka, sb, okb)
		}
	}
	if p.Stats() != (Stats{}) {
		t.Fatalf("zero-config plan injected faults: %+v", p.Stats())
	}
}

func TestObserverTagsIndependent(t *testing.T) {
	cfg := Config{Seed: 21, SampleDropRate: 0.5}
	p := MustNew(cfg)
	var archA, archB cpu.ThreadArch
	a := p.Observer(monitor.NewWindowTracker(100), 0)
	b := p.Observer(monitor.NewWindowTracker(100), 1)
	a.Reset(&archA)
	b.Reset(&archB)
	same := 0
	const windows = 200
	for i := 0; i < windows; i++ {
		stepArch(&archA, 100)
		stepArch(&archB, 100)
		_, oka := a.Observe(&archA)
		_, okb := b.Observe(&archB)
		if oka == okb {
			same++
		}
	}
	if same == windows {
		t.Fatal("differently tagged observers draw identical fault streams")
	}
}

func TestCorruptBytesDeterministicAndBounded(t *testing.T) {
	mk := func() []byte {
		b := make([]byte, 8192)
		for i := range b {
			b[i] = byte(i)
		}
		return b
	}
	cfg := Config{Seed: 17, TraceCorruptRate: 0.01}
	b1, b2 := mk(), mk()
	n1 := MustNew(cfg).CorruptBytes(b1)
	n2 := MustNew(cfg).CorruptBytes(b2)
	if n1 != n2 || !bytes.Equal(b1, b2) {
		t.Fatalf("corruption not deterministic: %d vs %d bytes", n1, n2)
	}
	if n1 == 0 {
		t.Fatal("no bytes corrupted at rate 0.01 over 8 KiB")
	}
	frac := float64(n1) / float64(len(b1))
	if frac > 0.05 {
		t.Fatalf("corrupted fraction %.3f far above rate 0.01", frac)
	}
	// Every touched byte must actually differ (no zero XOR masks).
	ref := mk()
	diff := 0
	for i := range b1 {
		if b1[i] != ref[i] {
			diff++
		}
	}
	if diff != n1 {
		t.Fatalf("reported %d corrupted bytes but %d differ", n1, diff)
	}
	if MustNew(Config{Seed: 17}).CorruptBytes(mk()) != 0 {
		t.Fatal("rate-0 plan corrupted bytes")
	}
}
