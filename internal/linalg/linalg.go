// Package linalg provides the small dense linear-algebra kernel the
// HPE regression step needs: matrices, matrix products and a linear
// solver (Gaussian elimination with partial pivoting), plus ordinary
// least squares via the normal equations.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices (all the same length).
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows with empty input")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: %d != %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns m^T.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m * o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	r := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < o.Cols; j++ {
				r.Data[i*r.Cols+j] += a * o.At(k, j)
			}
		}
	}
	return r
}

// MulVec returns m * v for a column vector v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d * vec(%d)", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// Solve solves A x = b for square A using Gaussian elimination with
// partial pivoting. A and b are not modified. It returns an error for
// singular (or numerically singular) systems.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: Solve needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Solve rhs length %d != %d", len(b), n)
	}
	// Augmented working copy.
	w := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		maxAbs := math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.At(r, col)); v > maxAbs {
				maxAbs = v
				pivot = r
			}
		}
		if maxAbs < 1e-12 {
			return nil, fmt.Errorf("linalg: singular system (pivot %g at column %d)", maxAbs, col)
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				w.Data[col*n+j], w.Data[pivot*n+j] = w.Data[pivot*n+j], w.Data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		// Eliminate below.
		inv := 1 / w.At(col, col)
		for r := col + 1; r < n; r++ {
			f := w.At(r, col) * inv
			if f == 0 {
				continue
			}
			w.Set(r, col, 0)
			for j := col + 1; j < n; j++ {
				w.Data[r*n+j] -= f * w.Data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= w.At(i, j) * x[j]
		}
		x[i] = s / w.At(i, i)
	}
	return x, nil
}

// LeastSquares solves min ||X beta - y||^2 via the normal equations
// X^T X beta = X^T y, with a small ridge term for numerical safety on
// nearly collinear designs.
func LeastSquares(x *Matrix, y []float64) ([]float64, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("linalg: design has %d rows but %d targets", x.Rows, len(y))
	}
	if x.Rows < x.Cols {
		return nil, fmt.Errorf("linalg: underdetermined system (%d rows, %d cols)", x.Rows, x.Cols)
	}
	xt := x.Transpose()
	xtx := xt.Mul(x)
	const ridge = 1e-9
	for i := 0; i < xtx.Rows; i++ {
		xtx.Data[i*xtx.Cols+i] += ridge
	}
	xty := xt.MulVec(y)
	return Solve(xtx, xty)
}
