package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"ampsched/internal/rng"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("At/Set broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases data")
	}
}

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid dims accepted")
		}
	}()
	NewMatrix(0, 3)
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatal("FromRows wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows accepted")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %+v", tr)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %g", i, j, c.At(i, j))
			}
		}
	}
}

func TestMulDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch accepted")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	v := m.MulVec([]float64{1, 1})
	if v[0] != 3 || v[1] != 7 {
		t.Fatalf("MulVec = %v", v)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 1, 1e-12) || !approx(x[1], 3, 1e-12) {
		t.Fatalf("Solve = %v", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the diagonal requires a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 3, 1e-12) || !approx(x[1], 2, 1e-12) {
		t.Fatalf("Solve = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("singular system solved")
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := Solve(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := Solve(NewMatrix(2, 2), []float64{1}); err == nil {
		t.Fatal("wrong rhs length accepted")
	}
}

func TestSolveDoesNotModifyInputs(t *testing.T) {
	a := FromRows([][]float64{{3, 1}, {1, 2}})
	b := []float64{4, 5}
	orig := a.Clone()
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != orig.Data[i] {
			t.Fatal("Solve modified A")
		}
	}
	if b[0] != 4 || b[1] != 5 {
		t.Fatal("Solve modified b")
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// y = 2 + 3x fitted from 4 exact points.
	x := FromRows([][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}})
	y := []float64{2, 5, 8, 11}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(beta[0], 2, 1e-6) || !approx(beta[1], 3, 1e-6) {
		t.Fatalf("beta = %v", beta)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Noisy line: the estimate should be near the truth.
	r := rng.New(3)
	n := 200
	x := NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		xv := float64(i) / 10
		x.Set(i, 0, 1)
		x.Set(i, 1, xv)
		y[i] = 1.5 + 0.5*xv + (r.Float64()-0.5)*0.01
	}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(beta[0], 1.5, 0.05) || !approx(beta[1], 0.5, 0.05) {
		t.Fatalf("beta = %v", beta)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("underdetermined accepted")
	}
	if _, err := LeastSquares(NewMatrix(3, 2), []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestQuickSolveRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(5)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.Float64()*10-5)
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.Float64() * 10
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		ax := a.MulVec(x)
		for i := range b {
			if !approx(ax[i], b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		rows, cols := 1+r.Intn(5), 1+r.Intn(5)
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.Float64()
		}
		tt := m.Transpose().Transpose()
		for i := range m.Data {
			if tt.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
