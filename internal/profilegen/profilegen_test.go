package profilegen

import (
	"testing"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/workload"
)

func TestBinOf(t *testing.T) {
	cases := map[float64]int{
		-5: 0, 0: 0, 19.9: 0, 20: 1, 39.9: 1, 40: 2, 60: 3, 80: 4, 99: 4, 100: 4, 150: 4,
	}
	for pct, want := range cases {
		if got := binOf(pct); got != want {
			t.Errorf("binOf(%g) = %d, want %d", pct, got, want)
		}
	}
}

func TestBinLabel(t *testing.T) {
	if BinLabel(0) != "0% - 20%" {
		t.Fatalf("label 0: %q", BinLabel(0))
	}
	if BinLabel(4) != ">80% - 100%" {
		t.Fatalf("label 4: %q", BinLabel(4))
	}
}

// syntheticProfile builds a profile where INT-heavy compositions do
// better on the INT core and FP-heavy ones on the FP core.
func syntheticProfile() *Profile {
	p := &Profile{}
	for i := 0.0; i <= 100; i += 10 {
		for f := 0.0; f+i <= 100; f += 10 {
			intSide := 0.1 + 0.002*i - 0.001*f
			fpSide := 0.1 - 0.001*i + 0.002*f
			p.IntObs = append(p.IntObs, Observation{"syn", i, f, intSide})
			p.FPObs = append(p.FPObs, Observation{"syn", i, f, fpSide})
		}
	}
	return p
}

func TestBuildRatioMatrix(t *testing.T) {
	m, err := BuildRatioMatrix(syntheticProfile())
	if err != nil {
		t.Fatal(err)
	}
	// INT-heavy bin must favor the INT core, FP-heavy the FP core.
	if m.RatioIntOverFP(90, 5) <= 1 {
		t.Errorf("INT-heavy ratio %.2f <= 1", m.RatioIntOverFP(90, 5))
	}
	if m.RatioIntOverFP(5, 90) >= 1 {
		t.Errorf("FP-heavy ratio %.2f >= 1", m.RatioIntOverFP(5, 90))
	}
	// Every cell is populated after gap filling.
	for i := 0; i < Bins; i++ {
		for f := 0; f < Bins; f++ {
			if m.Ratio[i][f] <= 0 {
				t.Errorf("cell [%d][%d] = %g", i, f, m.Ratio[i][f])
			}
		}
	}
	if m.Name() != "matrix" {
		t.Fatal("estimator name wrong")
	}
}

func TestBuildRatioMatrixEmpty(t *testing.T) {
	if _, err := BuildRatioMatrix(&Profile{}); err == nil {
		t.Fatal("empty profile accepted")
	}
}

func TestBuildRatioMatrixOneSided(t *testing.T) {
	// Observations on only one core cannot produce ratios.
	p := &Profile{IntObs: []Observation{{"x", 50, 10, 0.2}}}
	if _, err := BuildRatioMatrix(p); err == nil {
		t.Fatal("one-sided profile accepted")
	}
}

func TestFillGapsNearest(t *testing.T) {
	m := &RatioMatrix{}
	m.Ratio[0][0] = 0.5
	m.Filled[0][0] = true
	m.Ratio[4][0] = 2.0
	m.Filled[4][0] = true
	m.fillGaps()
	if m.Ratio[1][0] != 0.5 {
		t.Errorf("near cell filled with %g, want 0.5", m.Ratio[1][0])
	}
	if m.Ratio[3][0] != 2.0 {
		t.Errorf("near cell filled with %g, want 2.0", m.Ratio[3][0])
	}
}

func TestFitSurface(t *testing.T) {
	s, err := FitSurface(syntheticProfile(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "regression" {
		t.Fatal("estimator name wrong")
	}
	// Positivity everywhere (fit in log space).
	for i := 0.0; i <= 100; i += 25 {
		for f := 0.0; f <= 100; f += 25 {
			if s.RatioIntOverFP(i, f) <= 0 {
				t.Fatalf("surface non-positive at (%g, %g)", i, f)
			}
		}
	}
	// Same qualitative shape as the matrix.
	if s.RatioIntOverFP(90, 5) <= s.RatioIntOverFP(5, 90) {
		t.Fatal("surface does not separate INT-heavy from FP-heavy")
	}
}

func TestCollectProducesObservations(t *testing.T) {
	benches := []*workload.Benchmark{
		workload.MustByName("intstress"),
		workload.MustByName("fpstress"),
	}
	p := Collect(cpu.IntCoreConfig(), cpu.FPCoreConfig(), benches, ProfileConfig{
		InstrLimit:   60_000,
		SampleCycles: 20_000,
		Seed:         1,
	})
	if len(p.IntObs) < 4 || len(p.FPObs) < 4 {
		t.Fatalf("too few observations: %d / %d", len(p.IntObs), len(p.FPObs))
	}
	for _, o := range append(append([]Observation{}, p.IntObs...), p.FPObs...) {
		if o.IPCPerWatt <= 0 || o.IntPct < 0 || o.IntPct > 100 || o.FPPct < 0 || o.FPPct > 100 {
			t.Fatalf("bad observation: %+v", o)
		}
	}
}

func TestEndToEndMatrixFromSim(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	benches := []*workload.Benchmark{
		workload.MustByName("intstress"),
		workload.MustByName("fpstress"),
		workload.MustByName("pi"),
	}
	p := Collect(cpu.IntCoreConfig(), cpu.FPCoreConfig(), benches, ProfileConfig{
		InstrLimit:   150_000,
		SampleCycles: 30_000,
		Seed:         2,
	})
	m, err := BuildRatioMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	// The simulated cores must make intstress-like mixes prefer the
	// INT core and fpstress-like mixes the FP core.
	if m.RatioIntOverFP(85, 0) <= 1.1 {
		t.Errorf("INT-heavy measured ratio %.2f", m.RatioIntOverFP(85, 0))
	}
	if m.RatioIntOverFP(3, 75) >= 0.95 {
		t.Errorf("FP-heavy measured ratio %.2f", m.RatioIntOverFP(3, 75))
	}
}

func TestDeriveRulesOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	benches := []*workload.Benchmark{
		workload.MustByName("intstress"),
		workload.MustByName("fpstress"),
		workload.MustByName("bitcount"),
		workload.MustByName("equake"),
	}
	rules, err := DeriveRules(cpu.IntCoreConfig(), cpu.FPCoreConfig(), benches,
		100_000, 1000, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rules.Windows == 0 || rules.Pairs != 10 {
		t.Fatalf("rules metadata: %+v", rules)
	}
	// Threads best placed on the INT core must show more INT than
	// those placed on the FP core, and vice versa for FP.
	if rules.IntHigh <= rules.IntLow {
		t.Errorf("IntHigh %.1f <= IntLow %.1f", rules.IntHigh, rules.IntLow)
	}
	if rules.FPHigh <= rules.FPLow {
		t.Errorf("FPHigh %.1f <= FPLow %.1f", rules.FPHigh, rules.FPLow)
	}
}

func TestDeriveRulesErrors(t *testing.T) {
	if _, err := DeriveRules(cpu.IntCoreConfig(), cpu.FPCoreConfig(),
		[]*workload.Benchmark{workload.MustByName("pi")}, 1000, 100, 1, 1); err == nil {
		t.Fatal("single benchmark accepted")
	}
}

func TestDefaultProfileConfig(t *testing.T) {
	c := DefaultProfileConfig()
	if c.InstrLimit == 0 || c.SampleCycles == 0 {
		t.Fatalf("defaults: %+v", c)
	}
	if c.SampleCycles > amp.ContextSwitchCycles {
		t.Fatal("sampling coarser than a context switch")
	}
}
