// Package profilegen performs the offline profiling of §V and §VI-A:
// it runs the nine representative benchmarks on both core types,
// builds the binned IPC/Watt ratio matrix (paper Fig. 3), fits the
// regression surface (paper Fig. 4), and derives the threshold
// swapping rules (paper Fig. 5) from per-window best-mapping analysis.
package profilegen

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/regress"
	"ampsched/internal/rng"
	"ampsched/internal/stats"
	"ampsched/internal/workload"
)

// Bins is the number of bins per axis of the ratio matrix: 5 bins of
// 20 percentage points each, as in Fig. 3.
const Bins = 5

// binOf maps a percentage in [0, 100] to its bin index.
func binOf(pct float64) int {
	if pct < 0 {
		pct = 0
	}
	b := int(pct / (100.0 / Bins))
	if b >= Bins {
		b = Bins - 1
	}
	return b
}

// BinLabel renders a bin's range like ">20% - 40%".
func BinLabel(b int) string {
	lo := b * (100 / Bins)
	hi := lo + 100/Bins
	if b == 0 {
		return fmt.Sprintf("%d%% - %d%%", lo, hi)
	}
	return fmt.Sprintf(">%d%% - %d%%", lo, hi)
}

// ProfileConfig controls the profiling runs.
type ProfileConfig struct {
	// InstrLimit per solo run (per benchmark per core).
	InstrLimit uint64
	// SampleCycles between observations (2 ms context switch).
	SampleCycles uint64
	// Seed for workload synthesis.
	Seed uint64
}

// DefaultProfileConfig returns a profile run sized to produce several
// samples per benchmark at the 2 ms interval.
func DefaultProfileConfig() ProfileConfig {
	return ProfileConfig{
		InstrLimit:   3_000_000,
		SampleCycles: amp.ContextSwitchCycles / 8,
		Seed:         42,
	}
}

// Observation is one profiled (composition -> IPC/Watt) point on one
// core.
type Observation struct {
	Bench      string
	IntPct     float64
	FPPct      float64
	IPCPerWatt float64
}

// Profile is the raw profiling dataset: observations per core type.
type Profile struct {
	IntObs []Observation
	FPObs  []Observation
}

// Collect runs each benchmark solo on both core configurations,
// sampling composition and IPC/Watt every SampleCycles (§V step 2).
// The solo runs are independent detailed simulations, so they fan out
// across GOMAXPROCS workers; observations are assembled in benchmark
// order, so the profile is identical to a serial pass.
func Collect(intCfg, fpCfg *cpu.Config, benches []*workload.Benchmark, cfg ProfileConfig) *Profile {
	type soloObs struct {
		intObs, fpObs []Observation
	}
	perBench := make([]soloObs, len(benches))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(benches) {
		workers = len(benches)
	}
	var next int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		i := int(next)
		next++
		return i
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i >= len(benches) {
					return
				}
				b := benches[i]
				ri := amp.SoloRun(intCfg, b, cfg.Seed, cfg.InstrLimit, cfg.SampleCycles)
				rf := amp.SoloRun(fpCfg, b, cfg.Seed, cfg.InstrLimit, cfg.SampleCycles)
				for _, s := range ri.Samples {
					if s.Committed > 0 && s.IPCPerWatt > 0 {
						perBench[i].intObs = append(perBench[i].intObs,
							Observation{b.Name, s.IntPct, s.FPPct, s.IPCPerWatt})
					}
				}
				for _, s := range rf.Samples {
					if s.Committed > 0 && s.IPCPerWatt > 0 {
						perBench[i].fpObs = append(perBench[i].fpObs,
							Observation{b.Name, s.IntPct, s.FPPct, s.IPCPerWatt})
					}
				}
			}
		}()
	}
	wg.Wait()
	p := &Profile{}
	for i := range perBench {
		p.IntObs = append(p.IntObs, perBench[i].intObs...)
		p.FPObs = append(p.FPObs, perBench[i].fpObs...)
	}
	return p
}

// RatioMatrix is the §V step-3 estimator: per (%INT, %FP) bin, the
// ratio of the IPC/Watt achieved on the INT core to the IPC/Watt
// achieved on the FP core. Empty bins are filled from the nearest
// populated bin. It implements sched.Estimator.
type RatioMatrix struct {
	Ratio  [Bins][Bins]float64 // [intBin][fpBin]
	Filled [Bins][Bins]bool    // true where real data existed
}

// modeStep quantizes IPC/Watt observations for the per-bin statistical
// mode (the paper reports mode ~= mean at the 2 ms granularity).
const modeStep = 0.005

// BuildRatioMatrix aggregates a profile into the binned ratio matrix.
// Bins observed on only one core, or never observed, are filled by
// nearest-neighbor propagation so the estimator is total.
func BuildRatioMatrix(p *Profile) (*RatioMatrix, error) {
	var intBins, fpBins [Bins][Bins][]float64
	for _, o := range p.IntObs {
		bi, bf := binOf(o.IntPct), binOf(o.FPPct)
		intBins[bi][bf] = append(intBins[bi][bf], o.IPCPerWatt)
	}
	for _, o := range p.FPObs {
		bi, bf := binOf(o.IntPct), binOf(o.FPPct)
		fpBins[bi][bf] = append(fpBins[bi][bf], o.IPCPerWatt)
	}

	m := &RatioMatrix{}
	any := false
	for i := 0; i < Bins; i++ {
		for f := 0; f < Bins; f++ {
			if len(intBins[i][f]) == 0 || len(fpBins[i][f]) == 0 {
				continue
			}
			num, err := stats.Mode(intBins[i][f], modeStep)
			if err != nil {
				return nil, err
			}
			den, err := stats.Mode(fpBins[i][f], modeStep)
			if err != nil {
				return nil, err
			}
			if den <= 0 || num <= 0 {
				continue
			}
			m.Ratio[i][f] = num / den
			m.Filled[i][f] = true
			any = true
		}
	}
	if !any {
		return nil, fmt.Errorf("profilegen: no bin had observations on both cores")
	}
	m.fillGaps()
	return m, nil
}

// fillGaps assigns every empty bin the ratio of its nearest populated
// bin (Manhattan distance; deterministic scan order breaks ties).
func (m *RatioMatrix) fillGaps() {
	for i := 0; i < Bins; i++ {
		for f := 0; f < Bins; f++ {
			if m.Filled[i][f] {
				continue
			}
			best := math.MaxInt32
			val := 1.0
			for si := 0; si < Bins; si++ {
				for sf := 0; sf < Bins; sf++ {
					if !m.Filled[si][sf] {
						continue
					}
					d := abs(si-i) + abs(sf-f)
					if d < best {
						best = d
						val = m.Ratio[si][sf]
					}
				}
			}
			m.Ratio[i][f] = val
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Name implements sched.Estimator.
func (m *RatioMatrix) Name() string { return "matrix" }

// RatioIntOverFP implements sched.Estimator.
func (m *RatioMatrix) RatioIntOverFP(intPct, fpPct float64) float64 {
	return m.Ratio[binOf(intPct)][binOf(fpPct)]
}

// Surface is the §V curve-fitting alternative: a polynomial surface
// over (%INT, %FP) fitted to log-ratios so the estimate is always
// positive (paper Fig. 4). Evaluations are clamped to the range of
// ratios actually observed during profiling — a low-degree polynomial
// extrapolates wildly in grid corners no workload ever visits. It
// implements sched.Estimator.
type Surface struct {
	Poly     *regress.Poly2D
	MinRatio float64
	MaxRatio float64
}

// FitSurface fits the regression estimator to the profile. Degree 2
// is the paper-plausible choice; the fit happens in log space.
func FitSurface(p *Profile, degree int) (*Surface, error) {
	m, err := BuildRatioMatrix(p)
	if err != nil {
		return nil, err
	}
	// Train on bin centers (real bins only), like fitting "all the
	// collected results" after binning.
	var x1, x2, y []float64
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < Bins; i++ {
		for f := 0; f < Bins; f++ {
			if !m.Filled[i][f] {
				continue
			}
			x1 = append(x1, float64(i)*20+10)
			x2 = append(x2, float64(f)*20+10)
			y = append(y, math.Log(m.Ratio[i][f]))
			if m.Ratio[i][f] < lo {
				lo = m.Ratio[i][f]
			}
			if m.Ratio[i][f] > hi {
				hi = m.Ratio[i][f]
			}
		}
	}
	if len(y) < regress.NumTerms(degree) {
		// Not enough populated bins for the requested degree; back
		// off until the system is determined.
		for degree > 1 && len(y) < regress.NumTerms(degree) {
			degree--
		}
	}
	poly, err := regress.Fit(x1, x2, y, degree)
	if err != nil {
		return nil, fmt.Errorf("profilegen: surface fit: %w", err)
	}
	return &Surface{Poly: poly, MinRatio: lo, MaxRatio: hi}, nil
}

// Name implements sched.Estimator.
func (s *Surface) Name() string { return "regression" }

// RatioIntOverFP implements sched.Estimator.
func (s *Surface) RatioIntOverFP(intPct, fpPct float64) float64 {
	r := math.Exp(s.Poly.Eval(intPct, fpPct))
	if s.MinRatio > 0 && r < s.MinRatio {
		return s.MinRatio
	}
	if s.MaxRatio > 0 && r > s.MaxRatio {
		return s.MaxRatio
	}
	return r
}

// DerivedRules is the outcome of the §VI-A threshold derivation.
type DerivedRules struct {
	// IntHigh: average %INT of threads best placed on the INT core.
	IntHigh float64
	// IntLow: average %INT of threads best placed on the FP core.
	IntLow float64
	// FPHigh: average %FP of threads best placed on the FP core.
	FPHigh float64
	// FPLow: average %FP of threads best placed on the INT core.
	FPLow float64
	// Pairs is the number of random two-thread combinations used.
	Pairs int
	// Windows is the total number of per-window decisions examined.
	Windows int
}

// windowProfile holds the per-instruction-window samples of one
// benchmark on both cores.
type windowProfile struct {
	name string
	intC []amp.SoloSample
	fpC  []amp.SoloSample
}

// DeriveRules replays the §VI-A experiment: per-window best
// thread-to-core mapping over random pairs of the profiled
// benchmarks, averaged into the four Fig. 5 thresholds.
func DeriveRules(intCfg, fpCfg *cpu.Config, benches []*workload.Benchmark,
	instrLimit, windowInstr uint64, pairs int, seed uint64) (DerivedRules, error) {

	if len(benches) < 2 {
		return DerivedRules{}, fmt.Errorf("profilegen: need at least two benchmarks")
	}
	// Window profiles are independent solo runs; fan them out like
	// Collect does (profiles is indexed, so order never depends on
	// completion order).
	profiles := make([]windowProfile, len(benches))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, b := range benches {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, b *workload.Benchmark) {
			defer func() { <-sem; wg.Done() }()
			ri := amp.SoloRunWindows(intCfg, b, seed, instrLimit, windowInstr)
			rf := amp.SoloRunWindows(fpCfg, b, seed, instrLimit, windowInstr)
			profiles[i] = windowProfile{name: b.Name, intC: ri.Samples, fpC: rf.Samples}
		}(i, b)
	}
	wg.Wait()

	r := rng.New(seed ^ 0x5eed)
	var intHigh, intLow, fpHigh, fpLow []float64
	windows := 0
	for p := 0; p < pairs; p++ {
		a := r.Intn(len(benches))
		b := r.Intn(len(benches) - 1)
		if b >= a {
			b++
		}
		pa, pb := &profiles[a], &profiles[b]
		n := min4(len(pa.intC), len(pa.fpC), len(pb.intC), len(pb.fpC))
		for w := 0; w < n; w++ {
			// Mapping 1: A on INT, B on FP. Mapping 2: the swap.
			m1 := pa.intC[w].IPCPerWatt + pb.fpC[w].IPCPerWatt
			m2 := pa.fpC[w].IPCPerWatt + pb.intC[w].IPCPerWatt
			windows++
			var onInt, onFP *amp.SoloSample
			if m1 >= m2 {
				onInt, onFP = &pa.intC[w], &pb.fpC[w]
			} else {
				onInt, onFP = &pb.intC[w], &pa.fpC[w]
			}
			intHigh = append(intHigh, onInt.IntPct)
			fpLow = append(fpLow, onInt.FPPct)
			fpHigh = append(fpHigh, onFP.FPPct)
			intLow = append(intLow, onFP.IntPct)
		}
	}
	if windows == 0 {
		return DerivedRules{}, fmt.Errorf("profilegen: no aligned windows to analyze")
	}
	return DerivedRules{
		IntHigh: stats.Mean(intHigh),
		IntLow:  stats.Mean(intLow),
		FPHigh:  stats.Mean(fpHigh),
		FPLow:   stats.Mean(fpLow),
		Pairs:   pairs,
		Windows: windows,
	}, nil
}

func min4(a, b, c, d int) int {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	if d < m {
		m = d
	}
	return m
}
