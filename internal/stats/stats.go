// Package stats provides the small statistical toolkit the evaluation
// uses: means, geometric means, the statistical mode over quantized
// observations (used by the HPE ratio matrix of §V), percent
// improvements and sorted summaries.
package stats

import (
	"fmt"
	"math"
	"sort"

	"ampsched/internal/rng"
)

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values. It returns
// an error if any value is non-positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: GeoMean of empty slice")
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: GeoMean needs positive values, got %g", x)
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// Min returns the minimum, or +Inf for empty input.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or -Inf for empty input.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Mode returns the statistical mode of xs after quantizing each value
// to multiples of step. Ties break toward the smaller value so the
// result is deterministic. The returned value is the mean of the raw
// observations inside the winning bin (so the mode retains sub-step
// precision, as when the paper reports mode ~= mean per bin).
func Mode(xs []float64, step float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: Mode of empty slice")
	}
	if step <= 0 {
		return 0, fmt.Errorf("stats: Mode needs positive step, got %g", step)
	}
	type bin struct {
		n   int
		sum float64
	}
	bins := make(map[int64]*bin)
	for _, x := range xs {
		k := int64(math.Floor(x / step))
		b := bins[k]
		if b == nil {
			b = &bin{}
			bins[k] = b
		}
		b.n++
		b.sum += x
	}
	keys := make([]int64, 0, len(bins))
	for k := range bins {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	best := keys[0]
	for _, k := range keys[1:] {
		if bins[k].n > bins[best].n {
			best = k
		}
	}
	b := bins[best]
	return b.sum / float64(b.n), nil
}

// PctImprovement returns 100*(a/b - 1): how much better a is than b.
func PctImprovement(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * (a/b - 1)
}

// SortedCopy returns an ascending-sorted copy.
func SortedCopy(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}

// BottomK returns the k smallest values (ascending); k is clamped.
func BottomK(xs []float64, k int) []float64 {
	s := SortedCopy(xs)
	if k > len(s) {
		k = len(s)
	}
	return s[:k]
}

// TopK returns the k largest values (ascending order preserved from
// the sorted slice); k is clamped.
func TopK(xs []float64, k int) []float64 {
	s := SortedCopy(xs)
	if k > len(s) {
		k = len(s)
	}
	return s[len(s)-k:]
}

// BootstrapCI returns a percentile bootstrap confidence interval for
// the mean of xs at the given confidence level (e.g. 0.95), using
// resamples drawn from the seeded generator. It returns lo == hi ==
// Mean(xs) for fewer than two observations.
func BootstrapCI(xs []float64, confidence float64, resamples int, seed uint64) (lo, hi float64) {
	m := Mean(xs)
	if len(xs) < 2 || resamples < 10 || confidence <= 0 || confidence >= 1 {
		return m, m
	}
	r := rng.New(seed)
	means := make([]float64, resamples)
	for b := 0; b < resamples; b++ {
		sum := 0.0
		for i := 0; i < len(xs); i++ {
			sum += xs[r.Intn(len(xs))]
		}
		means[b] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - confidence) / 2
	loIdx := int(alpha * float64(resamples))
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return means[loIdx], means[hiIdx]
}
