package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean not 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4})
	if err != nil || math.Abs(g-2) > 1e-12 {
		t.Fatalf("GeoMean = %g, %v", g, err)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Fatal("negative accepted")
	}
	if _, err := GeoMean([]float64{0}); err == nil {
		t.Fatal("zero accepted")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max: %g %g", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max not infinities")
	}
}

func TestMode(t *testing.T) {
	// Values cluster at ~1.0 (three) and ~2.0 (two).
	xs := []float64{0.999, 1.001, 1.002, 2.001, 2.003}
	m, err := Mode(xs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if m < 0.99 || m > 1.01 {
		t.Fatalf("Mode = %g, want ~1.0", m)
	}
}

func TestModeTieBreaksLow(t *testing.T) {
	xs := []float64{1.0, 1.0, 3.0, 3.0}
	m, err := Mode(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m != 1.0 {
		t.Fatalf("tie broke to %g, want 1.0", m)
	}
}

func TestModeErrors(t *testing.T) {
	if _, err := Mode(nil, 0.1); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Mode([]float64{1}, 0); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestModeRetainsSubStepPrecision(t *testing.T) {
	xs := []float64{1.21, 1.23, 1.25}
	m, err := Mode(xs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-1.23) > 1e-12 {
		t.Fatalf("Mode = %g, want bin mean 1.23", m)
	}
}

func TestPctImprovement(t *testing.T) {
	if PctImprovement(1.1, 1.0) < 9.99 || PctImprovement(1.1, 1.0) > 10.01 {
		t.Fatal("pct improvement wrong")
	}
	if PctImprovement(1, 0) != 0 {
		t.Fatal("division by zero not guarded")
	}
}

func TestTopBottomK(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := BottomK(xs, 2); got[0] != 1 || got[1] != 2 {
		t.Fatalf("BottomK = %v", got)
	}
	if got := TopK(xs, 2); got[0] != 4 || got[1] != 5 {
		t.Fatalf("TopK = %v", got)
	}
	if got := TopK(xs, 10); len(got) != 5 {
		t.Fatalf("TopK clamp failed: %v", got)
	}
	// Original unchanged.
	if xs[0] != 5 {
		t.Fatal("input mutated")
	}
}

func TestSortedCopy(t *testing.T) {
	xs := []float64{3, 1, 2}
	s := SortedCopy(xs)
	if s[0] != 1 || s[2] != 3 || xs[0] != 3 {
		t.Fatal("SortedCopy wrong or mutating")
	}
}

func TestQuickGeoMeanLEMean(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1
		}
		g, err := GeoMean(xs)
		if err != nil {
			return false
		}
		return g <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickModeIsWithinRange(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 10
		}
		m, err := Mode(xs, 0.5)
		if err != nil {
			return false
		}
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapCI(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i%10) + 5 // mean 9.5, low variance
	}
	lo, hi := BootstrapCI(xs, 0.95, 2000, 1)
	m := Mean(xs)
	if lo > m || hi < m {
		t.Fatalf("CI [%g, %g] excludes the sample mean %g", lo, hi, m)
	}
	if hi-lo <= 0 || hi-lo > 2 {
		t.Fatalf("CI width %g implausible for this data", hi-lo)
	}
	// Wider confidence -> wider interval.
	lo99, hi99 := BootstrapCI(xs, 0.99, 2000, 1)
	if hi99-lo99 < hi-lo {
		t.Fatalf("99%% CI narrower than 95%%: %g vs %g", hi99-lo99, hi-lo)
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	lo, hi := BootstrapCI([]float64{42}, 0.95, 2000, 1)
	if lo != 42 || hi != 42 {
		t.Fatalf("single-sample CI [%g, %g]", lo, hi)
	}
	lo, hi = BootstrapCI(nil, 0.95, 2000, 1)
	if lo != 0 || hi != 0 {
		t.Fatalf("empty CI [%g, %g]", lo, hi)
	}
	lo, hi = BootstrapCI([]float64{1, 2, 3}, 1.5, 2000, 1)
	if lo != hi {
		t.Fatal("invalid confidence not degenerate")
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3, 9, 4}
	lo1, hi1 := BootstrapCI(xs, 0.9, 500, 7)
	lo2, hi2 := BootstrapCI(xs, 0.9, 500, 7)
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatal("bootstrap not deterministic under a fixed seed")
	}
}
