package stats_test

import (
	"fmt"

	"ampsched/internal/stats"
)

// ExampleMean demonstrates the basic aggregations used throughout the
// evaluation harness.
func ExampleMean() {
	ratios := []float64{1.10, 0.95, 1.30}
	g, _ := stats.GeoMean(ratios)
	fmt.Printf("weighted %.3f geometric %.3f\n", stats.Mean(ratios), g)
	// Output:
	// weighted 1.117 geometric 1.108
}

// ExampleMode shows the binned statistical mode the HPE ratio matrix
// uses (§V step 3).
func ExampleMode() {
	samples := []float64{1.31, 1.33, 1.30, 0.62, 0.65}
	m, _ := stats.Mode(samples, 0.1)
	fmt.Printf("%.2f\n", m)
	// Output:
	// 1.31
}
