// Package monitor implements the low-cost hardware performance
// monitors of §VI-A: per-thread committed-instruction window trackers
// that expose the instruction composition (%INT, %FP) of the most
// recent window, and the majority history voter of §VI-B that
// stabilizes reconfiguration decisions across program-phase noise.
package monitor

import (
	"fmt"

	"ampsched/internal/cpu"
	"ampsched/internal/isa"
)

// Sample is the composition of one completed commit window.
type Sample struct {
	// WindowEnd is the thread-local committed-instruction count at
	// which the window closed.
	WindowEnd uint64
	IntPct    float64
	FPPct     float64
}

// Observer is the sampling interface schedulers poll: a WindowTracker,
// or a fault-injection wrapper around one (fault.FaultyObserver) that
// perturbs the samples before the scheduler sees them.
type Observer interface {
	// Window returns the configured window size in committed
	// instructions.
	Window() uint64
	// Reset re-arms the observer against a thread's current counters.
	Reset(arch *cpu.ThreadArch)
	// Observe polls the thread's counters and reports a closed window's
	// sample, if any.
	Observe(arch *cpu.ThreadArch) (Sample, bool)
	// Latest returns the most recently reported sample and whether any
	// has been reported yet.
	Latest() (Sample, bool)
}

// WindowTracker watches one thread's committed-instruction counters
// and reports a Sample each time a full window of committed
// instructions has elapsed. The tracker is a pure observer: it reads
// the counters the core already maintains (the paper's "simple and
// low-cost hardware performance counters").
type WindowTracker struct {
	window    uint64
	nextEdge  uint64
	lastTotal uint64
	lastClass [isa.NumClasses]uint64
	latest    Sample
	haveOne   bool
}

// NewWindowTracker returns a tracker with the given window size in
// committed instructions (paper default: 1000).
func NewWindowTracker(window uint64) *WindowTracker {
	w := &WindowTracker{}
	w.Init(window)
	return w
}

// Init re-arms the tracker in place with the given window size,
// exactly as NewWindowTracker would: schedulers embed trackers by
// value so a per-run Reset allocates nothing.
func (w *WindowTracker) Init(window uint64) {
	if window == 0 {
		panic("monitor: zero window size")
	}
	*w = WindowTracker{window: window, nextEdge: window}
}

// Window returns the configured window size.
func (w *WindowTracker) Window() uint64 { return w.window }

var _ Observer = (*WindowTracker)(nil)

// Reset re-arms the tracker against a thread's current counters.
func (w *WindowTracker) Reset(arch *cpu.ThreadArch) {
	arch.Sync()
	w.lastTotal = arch.Committed
	w.lastClass = arch.CommittedByClass
	w.nextEdge = arch.Committed + w.window
	w.haveOne = false
	w.latest = Sample{}
}

// Observe checks the thread's counters; if at least one full window
// has completed since the last observation it closes the window,
// stores it as Latest and returns (sample, true). Multiple elapsed
// windows collapse into one sample covering them all (the monitor
// hardware is polled, not interrupt-driven).
//
//ampvet:hotpath
func (w *WindowTracker) Observe(arch *cpu.ThreadArch) (Sample, bool) {
	if arch.Committed < w.nextEdge {
		return Sample{}, false
	}
	arch.Sync()
	committed := arch.Committed - w.lastTotal
	var intN, fpN uint64
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		d := arch.CommittedByClass[c] - w.lastClass[c]
		if c.IsInt() {
			intN += d
		} else if c.IsFP() {
			fpN += d
		}
	}
	s := Sample{WindowEnd: arch.Committed}
	if committed > 0 {
		s.IntPct = 100 * float64(intN) / float64(committed)
		s.FPPct = 100 * float64(fpN) / float64(committed)
	}
	w.lastTotal = arch.Committed
	w.lastClass = arch.CommittedByClass
	w.nextEdge = arch.Committed + w.window
	w.latest = s
	w.haveOne = true
	return s, true
}

// Latest returns the most recently closed window's sample and whether
// any window has closed yet.
func (w *WindowTracker) Latest() (Sample, bool) { return w.latest, w.haveOne }

// Voter is the history-depth majority filter of §VI-B: the tentative
// per-window decisions (swap / stay) of the last n windows are kept,
// and a reconfiguration is triggered only when a strict majority of
// them voted to swap.
type Voter struct {
	depth int
	ring  []bool
	n     int
	head  int

	// ringArr backs ring for the common shallow depths (the paper
	// sweeps 5 and 10), so value-embedded voters re-Init without
	// allocating.
	ringArr [16]bool
}

// NewVoter returns a voter over the last depth tentative decisions
// (paper default: 5).
func NewVoter(depth int) *Voter {
	v := &Voter{}
	v.Init(depth)
	return v
}

// Init re-arms the voter in place with the given history depth,
// exactly as NewVoter would; the vote ring is reused (or taken from
// the inline array) when it is large enough.
func (v *Voter) Init(depth int) {
	if depth <= 0 {
		panic(fmt.Sprintf("monitor: invalid history depth %d", depth))
	}
	v.depth = depth
	v.n = 0
	v.head = 0
	switch {
	case depth <= len(v.ringArr):
		v.ring = v.ringArr[:depth]
	case cap(v.ring) >= depth:
		v.ring = v.ring[:depth]
	default:
		v.ring = make([]bool, depth)
	}
}

// Depth returns the configured history depth.
func (v *Voter) Depth() int { return v.depth }

// Len returns the number of votes currently held.
func (v *Voter) Len() int { return v.n }

// Push records a tentative decision.
func (v *Voter) Push(swap bool) {
	v.ring[v.head] = swap
	v.head = (v.head + 1) % v.depth
	if v.n < v.depth {
		v.n++
	}
}

// Majority reports whether the history is full and a strict majority
// of the held votes favor swapping.
func (v *Voter) Majority() bool {
	if v.n < v.depth {
		return false
	}
	c := 0
	for _, b := range v.ring {
		if b {
			c++
		}
	}
	return 2*c > v.depth
}

// Clear discards all held votes (called after a swap so the new phase
// is judged afresh).
func (v *Voter) Clear() {
	v.n = 0
	v.head = 0
}
