package monitor

import (
	"testing"
	"testing/quick"

	"ampsched/internal/cpu"
	"ampsched/internal/isa"
)

func TestWindowTrackerBasics(t *testing.T) {
	w := NewWindowTracker(1000)
	if w.Window() != 1000 {
		t.Fatal("window size wrong")
	}
	arch := &cpu.ThreadArch{}
	w.Reset(arch)
	if _, ok := w.Observe(arch); ok {
		t.Fatal("observed a window with no commits")
	}
	// 999 commits: still no window.
	arch.Committed = 999
	arch.CommittedByClass[isa.IntALU] = 999
	if _, ok := w.Observe(arch); ok {
		t.Fatal("window closed early")
	}
	// Cross the edge.
	arch.Committed = 1001
	arch.CommittedByClass[isa.IntALU] = 1000
	arch.CommittedByClass[isa.FPALU] = 1
	s, ok := w.Observe(arch)
	if !ok {
		t.Fatal("window did not close")
	}
	if s.WindowEnd != 1001 {
		t.Fatalf("window end %d", s.WindowEnd)
	}
	if s.IntPct < 99 || s.IntPct > 100 {
		t.Fatalf("IntPct %.2f", s.IntPct)
	}
}

func TestWindowTrackerComposition(t *testing.T) {
	w := NewWindowTracker(100)
	arch := &cpu.ThreadArch{}
	w.Reset(arch)
	arch.Committed = 100
	arch.CommittedByClass[isa.IntALU] = 30
	arch.CommittedByClass[isa.FPMul] = 20
	arch.CommittedByClass[isa.Load] = 50
	s, ok := w.Observe(arch)
	if !ok {
		t.Fatal("no window")
	}
	if s.IntPct != 30 || s.FPPct != 20 {
		t.Fatalf("composition: int %.1f fp %.1f", s.IntPct, s.FPPct)
	}
	// Second window measures only the delta.
	arch.Committed = 200
	arch.CommittedByClass[isa.FPALU] += 100
	s, ok = w.Observe(arch)
	if !ok {
		t.Fatal("no second window")
	}
	if s.IntPct != 0 || s.FPPct != 100 {
		t.Fatalf("delta composition: int %.1f fp %.1f", s.IntPct, s.FPPct)
	}
}

func TestWindowTrackerLatest(t *testing.T) {
	w := NewWindowTracker(10)
	arch := &cpu.ThreadArch{}
	w.Reset(arch)
	if _, ok := w.Latest(); ok {
		t.Fatal("latest before any window")
	}
	arch.Committed = 10
	arch.CommittedByClass[isa.IntALU] = 10
	w.Observe(arch)
	s, ok := w.Latest()
	if !ok || s.IntPct != 100 {
		t.Fatalf("latest = %+v, %v", s, ok)
	}
}

func TestWindowTrackerResetMidStream(t *testing.T) {
	w := NewWindowTracker(10)
	arch := &cpu.ThreadArch{Committed: 55}
	arch.CommittedByClass[isa.IntALU] = 55
	w.Reset(arch)
	arch.Committed = 60
	if _, ok := w.Observe(arch); ok {
		t.Fatal("window closed before a full window post-reset")
	}
	arch.Committed = 65
	arch.CommittedByClass[isa.IntALU] = 65
	if _, ok := w.Observe(arch); !ok {
		t.Fatal("window did not close after reset+10")
	}
}

func TestWindowTrackerCollapsesMissedWindows(t *testing.T) {
	w := NewWindowTracker(10)
	arch := &cpu.ThreadArch{}
	w.Reset(arch)
	arch.Committed = 100 // ten windows elapsed
	arch.CommittedByClass[isa.FPALU] = 100
	s, ok := w.Observe(arch)
	if !ok {
		t.Fatal("no window")
	}
	if s.FPPct != 100 {
		t.Fatalf("collapsed sample fp %.1f", s.FPPct)
	}
	// Only one sample for the whole gap.
	if _, ok := w.Observe(arch); ok {
		t.Fatal("spurious second sample")
	}
}

func TestNewWindowTrackerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window accepted")
		}
	}()
	NewWindowTracker(0)
}

func TestVoterMajority(t *testing.T) {
	v := NewVoter(5)
	if v.Majority() {
		t.Fatal("empty voter has majority")
	}
	for _, b := range []bool{true, true, false, true} {
		v.Push(b)
	}
	if v.Majority() {
		t.Fatal("majority before history is full")
	}
	v.Push(false) // 3 true / 2 false
	if !v.Majority() {
		t.Fatal("3/5 true is a majority")
	}
	v.Push(false) // ring now t,t,f,t→f... oldest evicted
	// Votes now: t, f, t, f, f -> 2 true: no majority.
	if v.Majority() {
		t.Fatal("2/5 true is not a majority")
	}
}

func TestVoterExactHalfEven(t *testing.T) {
	v := NewVoter(4)
	for _, b := range []bool{true, true, false, false} {
		v.Push(b)
	}
	if v.Majority() {
		t.Fatal("2/4 is not a strict majority")
	}
	v.Push(true) // t,f,f -> t: now t,t,f,... wait ring: replaced oldest
	// Ring: true(new), true, false, false -> still 2? No: oldest true
	// evicted: [true(new), true, false, false] = 2 true.
	if v.Majority() {
		t.Fatal("still 2/4")
	}
}

func TestVoterClear(t *testing.T) {
	v := NewVoter(3)
	v.Push(true)
	v.Push(true)
	v.Push(true)
	if !v.Majority() {
		t.Fatal("3/3 not majority")
	}
	v.Clear()
	if v.Len() != 0 || v.Majority() {
		t.Fatal("Clear did not reset")
	}
}

func TestVoterDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero depth accepted")
		}
	}()
	NewVoter(0)
}

func TestQuickVoterMatchesCount(t *testing.T) {
	f := func(votes []bool) bool {
		if len(votes) == 0 {
			return true
		}
		depth := 5
		v := NewVoter(depth)
		for _, b := range votes {
			v.Push(b)
		}
		if len(votes) < depth {
			return !v.Majority()
		}
		// Count the last `depth` votes.
		c := 0
		for _, b := range votes[len(votes)-depth:] {
			if b {
				c++
			}
		}
		return v.Majority() == (2*c > depth)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- degraded-input coverage -----------------------------------------

func TestWindowTrackerArchRollback(t *testing.T) {
	// A counter that appears to move backwards (stale snapshot, or
	// migration racing the read) must not close a window or wedge the
	// tracker; the next forward progress past the edge recovers it.
	w := NewWindowTracker(100)
	arch := &cpu.ThreadArch{}
	w.Reset(arch)
	arch.Committed = 150
	arch.CommittedByClass[isa.IntALU] = 150
	if _, ok := w.Observe(arch); !ok {
		t.Fatal("first window did not close")
	}
	// Rollback below the last total.
	arch.Committed = 120
	if _, ok := w.Observe(arch); ok {
		t.Fatal("window closed on a rolled-back counter")
	}
	// Forward again past the next edge (150+100).
	arch.Committed = 260
	arch.CommittedByClass[isa.IntALU] = 260
	if s, ok := w.Observe(arch); !ok || s.WindowEnd != 260 {
		t.Fatalf("tracker did not recover: %+v ok=%v", s, ok)
	}
}

func TestWindowTrackerEmptyCompositionWindow(t *testing.T) {
	// A window whose class deltas are all zero (counters cleared by a
	// migration) reports 0/0 composition rather than NaN.
	w := NewWindowTracker(100)
	arch := &cpu.ThreadArch{}
	w.Reset(arch)
	arch.Committed = 100 // no per-class attribution at all
	s, ok := w.Observe(arch)
	if !ok {
		t.Fatal("window did not close")
	}
	if s.IntPct != 0 || s.FPPct != 0 {
		t.Fatalf("empty window composition: %+v", s)
	}
	if s.IntPct != s.IntPct || s.FPPct != s.FPPct { // NaN check
		t.Fatalf("NaN composition: %+v", s)
	}
}

func TestVoterClearMidHistory(t *testing.T) {
	// Clear in the middle of accumulating history must fully restart
	// the vote: stale ring slots from before the Clear may never count
	// toward a later majority.
	v := NewVoter(5)
	for i := 0; i < 4; i++ {
		v.Push(true)
	}
	v.Clear()
	if v.Len() != 0 {
		t.Fatalf("Len %d after Clear", v.Len())
	}
	// Two fresh swap votes plus three stay votes fill the history; the
	// pre-Clear true votes must not resurrect a majority.
	v.Push(true)
	v.Push(true)
	v.Push(false)
	v.Push(false)
	v.Push(false)
	if v.Majority() {
		t.Fatal("stale pre-Clear votes counted toward majority")
	}
	// And a real majority still works after the Clear.
	v.Push(true) // ring now holds true,false,false,false->true... fill fresh
	v.Clear()
	for i := 0; i < 5; i++ {
		v.Push(i%2 == 0) // t,f,t,f,t = 3 true of 5
	}
	if !v.Majority() {
		t.Fatal("majority lost after mid-history Clear")
	}
}

func TestVoterAllDropoutWindows(t *testing.T) {
	// When every window is dropped upstream the voter never fills and
	// must keep answering "no majority" indefinitely without panicking.
	v := NewVoter(5)
	for i := 0; i < 1000; i++ {
		if v.Majority() {
			t.Fatal("majority from an empty history")
		}
	}
	if v.Len() != 0 {
		t.Fatalf("Len %d with no pushes", v.Len())
	}
}
