package monitor_test

import (
	"fmt"

	"ampsched/internal/cpu"
	"ampsched/internal/isa"
	"ampsched/internal/monitor"
)

// Example demonstrates the paper's two hardware monitors: the
// committed-window composition tracker and the majority history voter
// (§VI-A, §VI-B).
func Example() {
	arch := &cpu.ThreadArch{}
	tracker := monitor.NewWindowTracker(1000)
	tracker.Reset(arch)
	voter := monitor.NewVoter(5)

	// The thread commits 5 windows that are 60% integer.
	for w := 0; w < 5; w++ {
		arch.Committed += 1000
		arch.CommittedByClass[isa.IntALU] += 600
		arch.CommittedByClass[isa.Load] += 400
		if s, ok := tracker.Observe(arch); ok {
			voter.Push(s.IntPct >= 55) // a Fig. 5 style tentative vote
		}
	}
	fmt.Printf("majority says swap: %v\n", voter.Majority())
	// Output:
	// majority says swap: true
}
