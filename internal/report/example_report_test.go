package report_test

import (
	"os"

	"ampsched/internal/report"
)

// ExampleTable_Fprint renders a small aligned table the way every
// experiment in this repository reports its results.
func ExampleTable_Fprint() {
	t := &report.Table{
		Title:   "demo",
		Headers: []string{"scheme", "IPC/Watt"},
	}
	t.AddRow("proposed", report.F4(0.2104))
	t.AddRow("roundrobin", report.F4(0.1713))
	_ = t.Fprint(os.Stdout)
	// Output:
	// == demo ==
	// scheme      IPC/Watt
	// ----------------------
	// proposed    0.2104
	// roundrobin  0.1713
}
