package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
		Note:    "a note",
	}
	t.AddRow("alpha", "1")
	t.AddRow("a-much-longer-name", "2")
	return t
}

func TestFprintAligned(t *testing.T) {
	var sb strings.Builder
	if err := sample().Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "note: a note") {
		t.Error("missing note")
	}
	lines := strings.Split(out, "\n")
	var header, row1 string
	for i, l := range lines {
		if strings.HasPrefix(l, "name") {
			header = l
			row1 = lines[i+2]
			break
		}
	}
	if header == "" {
		t.Fatalf("no header in output:\n%s", out)
	}
	// The value column must start at the same offset in header and rows.
	hIdx := strings.Index(header, "value")
	rIdx := strings.Index(row1, "1")
	if hIdx != rIdx {
		t.Errorf("column misaligned: header@%d row@%d\n%s", hIdx, rIdx, out)
	}
}

func TestAddRowPadding(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b", "c"}}
	tab.AddRow("only-one")
	if len(tab.Rows[0]) != 3 {
		t.Fatalf("row not padded: %v", tab.Rows[0])
	}
	tab.AddRow("1", "2", "3", "4") // extra cell dropped
	if len(tab.Rows[1]) != 3 {
		t.Fatalf("row not truncated: %v", tab.Rows[1])
	}
}

func TestAddRowf(t *testing.T) {
	tab := &Table{Headers: []string{"s", "f", "i"}}
	tab.AddRowf("x", 1.23456, 42)
	if tab.Rows[0][0] != "x" || tab.Rows[0][1] != "1.235" || tab.Rows[0][2] != "42" {
		t.Fatalf("AddRowf: %v", tab.Rows[0])
	}
}

func TestCSV(t *testing.T) {
	tab := &Table{Headers: []string{"name", "note"}}
	tab.AddRow("plain", `has "quotes", and commas`)
	var sb strings.Builder
	if err := tab.FprintCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "name,note\n") {
		t.Fatalf("csv header: %q", out)
	}
	if !strings.Contains(out, `"has ""quotes"", and commas"`) {
		t.Fatalf("csv escaping: %q", out)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(1.25) != "+1.2%" && Pct(1.25) != "+1.3%" {
		t.Fatalf("Pct = %q", Pct(1.25))
	}
	if Pct(-3.0) != "-3.0%" {
		t.Fatalf("Pct = %q", Pct(-3.0))
	}
	if F3(1.23456) != "1.235" || F4(0.00012) != "0.0001" {
		t.Fatalf("F3/F4: %q %q", F3(1.23456), F4(0.00012))
	}
}
