// Package report renders experiment results as fixed-width ASCII
// tables (for the terminal and EXPERIMENTS.md) and CSV (for plotting).
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, padding or truncating to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values; each value is rendered
// with %v except float64 which uses %.3f and percentages the caller
// formats directly.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// Fprint writes the table, aligned, to w.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		_, err := fmt.Fprintln(w, sb.String())
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "note: %s\n", t.Note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// csvEscape quotes a cell if it contains separators.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// FprintCSV writes the table as CSV (headers first) to w.
func (t *Table) FprintCSV(w io.Writer) error {
	hs := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		hs[i] = csvEscape(h)
	}
	if _, err := fmt.Fprintln(w, strings.Join(hs, ",")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		cs := make([]string, len(r))
		for i, c := range r {
			cs[i] = csvEscape(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cs, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Pct formats a percentage with sign, one decimal.
func Pct(v float64) string { return fmt.Sprintf("%+.1f%%", v) }

// F3 formats a float with three decimals.
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }

// F4 formats a float with four decimals.
func F4(v float64) string { return fmt.Sprintf("%.4f", v) }
