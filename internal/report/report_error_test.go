package report

import (
	"errors"
	"strings"
	"testing"
)

// failAfter errors after n writes, exercising the error paths.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestFprintPropagatesErrors(t *testing.T) {
	tab := sample()
	for budget := 0; budget < 6; budget++ {
		if err := tab.Fprint(&failAfter{n: budget}); err == nil {
			t.Errorf("budget %d: error swallowed", budget)
		}
	}
	// A large budget succeeds.
	if err := tab.Fprint(&failAfter{n: 100}); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestFprintCSVPropagatesErrors(t *testing.T) {
	tab := sample()
	if err := tab.FprintCSV(&failAfter{n: 0}); err == nil {
		t.Fatal("header write error swallowed")
	}
	if err := tab.FprintCSV(&failAfter{n: 1}); err == nil {
		t.Fatal("row write error swallowed")
	}
}

func TestEmptyTable(t *testing.T) {
	tab := &Table{Headers: []string{"a"}}
	var sb strings.Builder
	if err := tab.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "a") {
		t.Fatal("header missing")
	}
}

func TestNoTitleNoNote(t *testing.T) {
	tab := &Table{Headers: []string{"x"}}
	tab.AddRow("1")
	var sb strings.Builder
	if err := tab.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "==") || strings.Contains(out, "note:") {
		t.Fatalf("unexpected decorations: %q", out)
	}
}
