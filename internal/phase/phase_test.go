package phase

import (
	"testing"
	"testing/quick"

	"ampsched/internal/cpu"
	"ampsched/internal/isa"
	"ampsched/internal/rng"
	"ampsched/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.IntervalLen = 0 },
		func(c *Config) { c.Threshold = 0 },
		func(c *Config) { c.Threshold = 2.5 },
		func(c *Config) { c.MaxPhases = 0 },
	}
	for i, mutate := range bads {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestNewDetectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config accepted")
		}
	}()
	NewDetector(Config{})
}

func TestSignatureDistance(t *testing.T) {
	var a, b Signature
	if a.Distance(&b) != 0 {
		t.Fatal("zero signatures not at distance 0")
	}
	a[0] = 1
	b[1] = 1
	if d := a.Distance(&b); d != 2 {
		t.Fatalf("disjoint unit signatures at distance %g, want 2", d)
	}
	if d := a.Distance(&a); d != 0 {
		t.Fatalf("self distance %g", d)
	}
}

func TestQuickDistanceMetricProperties(t *testing.T) {
	mk := func(seed uint64) Signature {
		r := rng.New(seed)
		var s Signature
		sum := 0.0
		for i := range s {
			s[i] = r.Float64()
			sum += s[i]
		}
		for i := range s {
			s[i] /= sum
		}
		return s
	}
	f := func(s1, s2, s3 uint64) bool {
		a, b, c := mk(s1), mk(s2), mk(s3)
		// Symmetry, non-negativity, triangle inequality, bound.
		if a.Distance(&b) != b.Distance(&a) {
			return false
		}
		if a.Distance(&b) < 0 || a.Distance(&b) > 2 {
			return false
		}
		return a.Distance(&c) <= a.Distance(&b)+b.Distance(&c)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// feed pushes n synthetic committed instructions with branches drawn
// from the given site set.
func feed(d *Detector, r *rng.Source, n int, sites []uint64) {
	for i := 0; i < n; i++ {
		if r.Bool(0.2) {
			d.Note(isa.Branch, sites[r.Intn(len(sites))])
		} else {
			d.Note(isa.IntALU, 0)
		}
	}
}

func TestDetectorStablePhase(t *testing.T) {
	d := NewDetector(Config{IntervalLen: 1000, Threshold: 0.5, MaxPhases: 8})
	r := rng.New(1)
	sites := []uint64{0x100, 0x200, 0x300, 0x400}
	feed(d, r, 50_000, sites)
	if d.Phases() != 1 {
		t.Fatalf("stable stream produced %d phases, want 1", d.Phases())
	}
	if d.Changes() != 1 {
		t.Fatalf("stable stream changed phase %d times, want 1 (the initial)", d.Changes())
	}
	if d.Intervals() != 50 {
		t.Fatalf("intervals = %d", d.Intervals())
	}
}

func TestDetectorSeparatesDistinctPhases(t *testing.T) {
	d := NewDetector(Config{IntervalLen: 1000, Threshold: 0.5, MaxPhases: 8})
	r := rng.New(2)
	a := []uint64{0x1000, 0x1004, 0x1008, 0x100c}
	b := []uint64{0x9000, 0x9abc, 0x9def, 0x9fff}
	for rep := 0; rep < 5; rep++ {
		feed(d, r, 10_000, a)
		feed(d, r, 10_000, b)
	}
	if d.Phases() != 2 {
		t.Fatalf("alternating streams produced %d phases, want 2", d.Phases())
	}
	// Revisits classify to the same ids: changes ~ 10 boundaries.
	if d.Changes() < 9 || d.Changes() > 11 {
		t.Fatalf("changes = %d, want ~10", d.Changes())
	}
}

func TestDetectorMaxPhasesClamped(t *testing.T) {
	d := NewDetector(Config{IntervalLen: 500, Threshold: 0.01, MaxPhases: 3})
	r := rng.New(3)
	// Every interval uses fresh branch sites: unbounded novelty.
	for i := 0; i < 20; i++ {
		sites := []uint64{uint64(i) * 0x1111, uint64(i)*0x1111 + 4}
		feed(d, r, 500, sites)
	}
	if d.Phases() > 3 {
		t.Fatalf("phase table grew to %d, cap 3", d.Phases())
	}
}

func TestDetectorHistory(t *testing.T) {
	d := NewDetector(Config{IntervalLen: 100, Threshold: 0.5, MaxPhases: 4})
	r := rng.New(4)
	feed(d, r, 1000, []uint64{0x40})
	h := d.History()
	if len(h) != 10 {
		t.Fatalf("history length %d", len(h))
	}
	for i, tr := range h {
		if tr.EndInstr != uint64(i+1)*100 {
			t.Fatalf("history %d EndInstr %d", i, tr.EndInstr)
		}
	}
}

func TestDetectorOnCore(t *testing.T) {
	// End to end: the detector as a commit hook on a real core must
	// see mixstress's two alternating phases.
	b := workload.MustByName("mixstress")
	d := NewDetector(Config{IntervalLen: 5_000, Threshold: 0.5, MaxPhases: 16})
	core := cpu.NewCore(cpu.IntCoreConfig())
	core.SetCommitHook(d.Hook())
	gen := workload.NewGenerator(b, 5, 0)
	arch := &cpu.ThreadArch{CodeSize: b.EffectiveCodeFootprint()}
	core.Bind(gen, arch)
	for cycle := uint64(0); arch.Committed < 200_000; cycle++ {
		core.Step(cycle)
	}
	if d.Phases() < 2 {
		t.Fatalf("detected %d phases in mixstress, want >= 2", d.Phases())
	}
	if d.Changes() < 3 {
		t.Fatalf("only %d phase changes across multiple mixstress flips", d.Changes())
	}
	// And a single-phase benchmark stays put.
	d2 := NewDetector(Config{IntervalLen: 5_000, Threshold: 0.5, MaxPhases: 16})
	core2 := cpu.NewCore(cpu.IntCoreConfig())
	core2.SetCommitHook(d2.Hook())
	b2 := workload.MustByName("sha")
	gen2 := workload.NewGenerator(b2, 5, 0)
	arch2 := &cpu.ThreadArch{CodeSize: b2.EffectiveCodeFootprint()}
	core2.Bind(gen2, arch2)
	for cycle := uint64(0); arch2.Committed < 100_000; cycle++ {
		core2.Step(cycle)
	}
	if d2.Phases() != 1 {
		t.Fatalf("sha produced %d phases, want 1", d2.Phases())
	}
}

func TestHookCountsAllClasses(t *testing.T) {
	d := NewDetector(Config{IntervalLen: 10, Threshold: 0.5, MaxPhases: 2})
	h := d.Hook()
	for i := 0; i < 25; i++ {
		h(isa.Load, 0x99)
	}
	if d.Intervals() != 2 {
		t.Fatalf("intervals = %d, want 2 (25 instrs / 10)", d.Intervals())
	}
}
