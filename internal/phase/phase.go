// Package phase implements online program-phase classification in the
// style of Sherwood, Sair & Calder ("Phase tracking and prediction",
// ISCA 2003) — reference [6] of the paper, and the phenomenon its
// fine-grained scheduler exploits.
//
// The classifier builds a branch-working-set signature per interval of
// committed instructions: a small vector of hash buckets counting
// committed branch-site occurrences. Intervals whose normalized
// signatures lie within a Manhattan-distance threshold of a known
// phase's signature are classified as that phase; otherwise a new
// phase is allocated. The signature is microarchitecture independent —
// it depends only on the committed control flow, exactly the property
// the paper wants from its monitors.
package phase

import (
	"fmt"

	"ampsched/internal/isa"
)

// SignatureBuckets is the control-flow half of the signature: hashed
// branch-site buckets, the classic footprint-friendly width.
const SignatureBuckets = 32

// SignatureLen is the full signature width: the branch-working-set
// buckets plus one dimension per instruction class. Pure control-flow
// signatures cannot separate phases whose branch sites are distinct
// but uniformly used; the composition half captures exactly the
// property the paper's own monitors observe (%INT, %FP, ...).
const SignatureLen = SignatureBuckets + int(isa.NumClasses)

// Signature is a normalized phase fingerprint: the first
// SignatureBuckets entries are the branch-working-set histogram
// (summing to 1/2 when the interval had branches) and the remaining
// entries the instruction-class mix (summing to 1/2).
type Signature [SignatureLen]float64

// Distance returns the Manhattan distance between two signatures,
// in [0, 2].
func (s *Signature) Distance(o *Signature) float64 {
	d := 0.0
	for i := range s {
		v := s[i] - o[i]
		if v < 0 {
			v = -v
		}
		d += v
	}
	return d
}

// Config parameterizes a Detector.
type Config struct {
	// IntervalLen is the classification interval in committed
	// instructions.
	IntervalLen uint64
	// Threshold is the Manhattan distance within which an interval
	// matches a known phase (Sherwood uses ~0.4 on normalized BBVs).
	Threshold float64
	// MaxPhases caps the phase table; further novel intervals map to
	// the nearest known phase.
	MaxPhases int
}

// DefaultConfig mirrors the literature's operating point, scaled to
// the simulator's window sizes.
func DefaultConfig() Config {
	return Config{IntervalLen: 10_000, Threshold: 0.5, MaxPhases: 32}
}

// Validate reports the first configuration problem.
func (c *Config) Validate() error {
	if c.IntervalLen == 0 {
		return fmt.Errorf("phase: zero IntervalLen")
	}
	if c.Threshold <= 0 || c.Threshold > 2 {
		return fmt.Errorf("phase: Threshold %g outside (0, 2]", c.Threshold)
	}
	if c.MaxPhases <= 0 {
		return fmt.Errorf("phase: non-positive MaxPhases")
	}
	return nil
}

// Transition records one classified interval.
type Transition struct {
	// EndInstr is the committed-instruction count closing the interval.
	EndInstr uint64
	// Phase is the classified phase id.
	Phase int
}

// Detector is the online classifier. Feed it committed instructions
// through Note (or install it as a cpu commit hook via Hook).
type Detector struct {
	cfg Config

	buckets  [SignatureBuckets]uint64
	classes  [isa.NumClasses]uint64
	branches uint64
	count    uint64

	table    []Signature
	current  int
	history  []Transition
	changes  uint64
	interval uint64 // completed intervals
}

// NewDetector builds a detector.
func NewDetector(cfg Config) *Detector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Detector{cfg: cfg, current: -1}
}

// Hook adapts the detector to cpu.Core.SetCommitHook.
func (d *Detector) Hook() func(class isa.Class, addr uint64) {
	return func(class isa.Class, addr uint64) { d.Note(class, addr) }
}

// Note observes one committed instruction.
func (d *Detector) Note(class isa.Class, addr uint64) {
	if class == isa.Branch {
		d.buckets[bucketOf(addr)]++
		d.branches++
	}
	if int(class) < len(d.classes) {
		d.classes[class]++
	}
	d.count++
	if d.count%d.cfg.IntervalLen == 0 {
		d.closeInterval()
	}
}

// bucketOf hashes a branch site into the signature vector.
func bucketOf(addr uint64) int {
	z := addr >> 2
	z = (z ^ (z >> 13)) * 0x9e3779b97f4a7c15
	z ^= z >> 29
	return int(z % SignatureBuckets)
}

// closeInterval classifies the finished interval.
func (d *Detector) closeInterval() {
	d.interval++
	var sig Signature
	if d.branches > 0 {
		inv := 0.5 / float64(d.branches)
		for i, b := range d.buckets {
			sig[i] = float64(b) * inv
		}
	}
	var classTotal uint64
	for _, v := range d.classes {
		classTotal += v
	}
	if classTotal > 0 {
		inv := 0.5 / float64(classTotal)
		for i, v := range d.classes {
			sig[SignatureBuckets+i] = float64(v) * inv
		}
	}
	d.buckets = [SignatureBuckets]uint64{}
	d.classes = [isa.NumClasses]uint64{}
	d.branches = 0

	best, bestDist := -1, 2.1
	for id := range d.table {
		if dist := d.table[id].Distance(&sig); dist < bestDist {
			best, bestDist = id, dist
		}
	}
	var id int
	switch {
	case best >= 0 && bestDist <= d.cfg.Threshold:
		id = best
		// Exponentially age the stored signature toward the new
		// observation so drifting phases stay matched.
		for i := range d.table[id] {
			d.table[id][i] = 0.75*d.table[id][i] + 0.25*sig[i]
		}
	case len(d.table) < d.cfg.MaxPhases:
		d.table = append(d.table, sig)
		id = len(d.table) - 1
	default:
		id = best // table full: nearest known phase
	}

	if id != d.current {
		d.changes++
		d.current = id
	}
	d.history = append(d.history, Transition{EndInstr: d.count, Phase: id})
}

// Current returns the current phase id (-1 before the first interval).
func (d *Detector) Current() int { return d.current }

// Phases returns the number of distinct phases discovered.
func (d *Detector) Phases() int { return len(d.table) }

// Changes returns how many interval boundaries changed phase.
func (d *Detector) Changes() uint64 { return d.changes }

// Intervals returns how many intervals have been classified.
func (d *Detector) Intervals() uint64 { return d.interval }

// History returns the per-interval classification sequence.
func (d *Detector) History() []Transition { return d.history }
