package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCheckAnalyzer enforces mutex discipline in the concurrent
// subsystems (server, jobqueue, wal, telemetry, experiments — though
// it runs everywhere locks appear):
//
//   - no lock held across a blocking operation: channel send/receive,
//     select without default, range over a channel, a known-blocking
//     standard-library call (file/net I/O, time.Sleep, WaitGroup.Wait),
//     or a call to any function the summary layer proves blocking —
//     including transitively and through interface dispatch;
//   - no inconsistent acquisition order: two locks nested one way in
//     one place and the opposite way in another is a deadlock waiting
//     for the right interleaving;
//   - no lock passed or received by value: a copied mutex guards
//     nothing.
//
// sync.(*Cond).Wait is exempt from the blocking rule: it atomically
// releases its mutex, so holding that lock across it is the designed
// protocol. Goroutine bodies launched with `go` are analyzed as their
// own context — the spawner does not block, and does not hold its
// locks there.
//
// The tracking is a linear statement walk, not full control-flow
// analysis: a lock acquired and released in a branch is tracked inside
// the branch; a conditionally-leaked lock is (conservatively) dropped
// at the join.
var LockCheckAnalyzer = &Analyzer{
	Name: "lockcheck",
	Doc: "flag locks held across blocking operations, inconsistent lock acquisition order, " +
		"and locks passed by value",
	Run: runLockCheck,
}

// heldLock is one acquisition the walker is tracking.
type heldLock struct {
	expr string    // receiver expression, e.g. "s.mu" (scope-local identity)
	id   string    // cross-function identity "pkg.Type.field", "" when local
	pos  token.Pos // acquisition site
}

// lockOrder records first-seen acquisition directions for the
// inconsistent-order check, per package.
type lockOrder map[[2]string]token.Pos

func runLockCheck(pass *Pass) error {
	order := lockOrder{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockByValue(pass, fd)
			if fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass, order: order}
			w.walkStmts(fd.Body.List, nil)
		}
	}
	return nil
}

// lockWalker tracks held locks through one function body.
type lockWalker struct {
	pass  *Pass
	order lockOrder
}

// walkStmts processes a statement list sequentially, mutating held.
// Branch bodies get a copy: locks they acquire and release are tracked
// inside, locks they leak are dropped at the join.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, stmt := range stmts {
		held = w.walkStmt(stmt, held)
	}
	return held
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, held []heldLock) []heldLock {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if lk, kind := lockOp(w.pass.Info, call); kind == opLock {
				return w.acquire(held, lk)
			} else if kind == opUnlock {
				return release(held, lk.expr)
			}
		}
		w.scanBlocking(s, held)
	case *ast.DeferStmt:
		if _, kind := lockOp(w.pass.Info, s.Call); kind == opUnlock {
			// defer x.Unlock(): the lock stays held to function end —
			// keep tracking it so later blocking ops are reported.
			return held
		}
		w.scanBlocking(s, held)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.scanBlockingExpr(s.Cond, held)
		w.walkStmts(s.Body.List, append([]heldLock(nil), held...))
		if s.Else != nil {
			w.walkStmt(s.Else, append([]heldLock(nil), held...))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.scanBlockingExpr(s.Cond, held)
		w.walkStmts(s.Body.List, append([]heldLock(nil), held...))
	case *ast.RangeStmt:
		w.scanBlockingExpr(s.X, held)
		if t, ok := w.pass.Info.Types[s.X]; ok && held != nil {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				w.reportHeld(held, s.Pos(), "range over channel")
			}
		}
		w.walkStmts(s.Body.List, append([]heldLock(nil), held...))
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.scanBlockingExpr(s.Tag, held)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, append([]heldLock(nil), held...))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, append([]heldLock(nil), held...))
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(held) > 0 {
			w.reportHeld(held, s.Pos(), "select without default")
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, append([]heldLock(nil), held...))
			}
		}
	case *ast.GoStmt:
		// The spawner neither blocks nor holds its locks in the new
		// goroutine; its body is walked as an independent context.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, nil)
		}
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	default:
		w.scanBlocking(stmt, held)
	}
	return held
}

// acquire pushes a lock, checking acquisition order against every lock
// already held.
func (w *lockWalker) acquire(held []heldLock, lk heldLock) []heldLock {
	for _, h := range held {
		if h.id == "" || lk.id == "" || h.id == lk.id {
			continue
		}
		if firstPos, seen := w.order[[2]string{lk.id, h.id}]; seen {
			w.pass.Reportf(lk.pos,
				"locks %s and %s acquired in inconsistent order (opposite nesting at %s)",
				h.id, lk.id, w.pass.Fset.Position(firstPos))
			continue
		}
		if _, seen := w.order[[2]string{h.id, lk.id}]; !seen {
			w.order[[2]string{h.id, lk.id}] = lk.pos
		}
	}
	return append(held, lk)
}

// release pops the lock whose receiver expression matches.
func release(held []heldLock, expr string) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].expr == expr {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

// scanBlocking inspects a statement's expressions for blocking
// operations while locks are held.
func (w *lockWalker) scanBlocking(stmt ast.Stmt, held []heldLock) {
	if len(held) == 0 {
		// Still walk nested function literals: they start with no
		// inherited held set of their own but may lock internally.
		ast.Inspect(stmt, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				w.walkStmts(lit.Body.List, nil)
				return false
			}
			return true
		})
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal defined while the lock is held usually runs
			// synchronously (callbacks like cache.Do's compute), so it
			// inherits the held set.
			w.walkStmts(n.Body.List, append([]heldLock(nil), held...))
			return false
		case *ast.SendStmt:
			w.reportHeld(held, n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.reportHeld(held, n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if _, kind := lockOp(w.pass.Info, n); kind != opNone {
				return true
			}
			if why, blocking := w.pass.Sum.BlockingCall(w.pass.Info, n); blocking {
				w.reportHeld(held, n.Pos(), why)
			}
		}
		return true
	})
}

// scanBlockingExpr wraps an expression for scanning.
func (w *lockWalker) scanBlockingExpr(e ast.Expr, held []heldLock) {
	if e == nil {
		return
	}
	w.scanBlocking(&ast.ExprStmt{X: e}, held)
}

// reportHeld reports one blocking operation against every held lock.
func (w *lockWalker) reportHeld(held []heldLock, pos token.Pos, why string) {
	for _, h := range held {
		w.pass.Reportf(pos, "lock %s held across blocking operation: %s (acquired at %s)",
			h.expr, why, w.pass.Fset.Position(h.pos))
	}
}

// lock-operation classification.
type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies a call as a sync.Mutex/RWMutex acquire or release
// and extracts the lock's identities.
func lockOp(info *types.Info, call *ast.CallExpr) (heldLock, lockOpKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return heldLock{}, opNone
	}
	callee, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return heldLock{}, opNone
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return heldLock{}, opNone
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return heldLock{}, opNone
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return heldLock{}, opNone
	}
	lk := heldLock{expr: types.ExprString(sel.X), id: lockID(info, sel.X), pos: call.Pos()}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return lk, opLock
	case "Unlock", "RUnlock":
		return lk, opUnlock
	}
	return heldLock{}, opNone
}

// lockID derives a cross-function identity for the lock expression:
// "pkg.Type.field" for a struct-field mutex, "pkg.var" for a
// package-level one, "" for locals (no ordering tracking).
func lockID(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		fieldObj, ok := info.Uses[e.Sel].(*types.Var)
		if !ok || !fieldObj.IsField() {
			return ""
		}
		rt := info.Types[e.X].Type
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fieldObj.Name()
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

// checkLockByValue flags parameters and receivers whose type contains
// a lock but is not behind a pointer: the callee operates on a copy
// that guards nothing.
func checkLockByValue(pass *Pass, fd *ast.FuncDecl) {
	checkField := func(field *ast.Field, what string) {
		t := pass.Info.Types[field.Type].Type
		if t == nil {
			return
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			return
		}
		if lock := containsLock(t, 0); lock != "" {
			pass.Reportf(field.Pos(), "%s passes lock by value: %s contains %s",
				what, types.TypeString(t, types.RelativeTo(pass.Pkg)), lock)
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			checkField(field, "receiver")
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			checkField(field, "parameter")
		}
	}
}

// containsLock reports the first sync lock type found by value inside
// t ("" when none).
func containsLock(t types.Type, depth int) string {
	if depth > 4 {
		return ""
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "Cond", "WaitGroup", "Once", "Pool", "Map":
				return "sync." + obj.Name()
			}
		}
		return containsLock(named.Underlying(), depth+1)
	}
	if st, ok := t.(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if lock := containsLock(st.Field(i).Type(), depth+1); lock != "" {
				return lock
			}
		}
	}
	if arr, ok := t.(*types.Array); ok {
		return containsLock(arr.Elem(), depth+1)
	}
	return ""
}
