package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// FindingsCache memoizes per-package analyzer verdicts on disk so a
// warm `make lint` costs one `go list` plus file hashing instead of a
// full parse/type-check/analyze cycle.
//
// A package's key is a SHA-256 over everything that can change its
// findings:
//
//   - a driver-supplied salt (ampvet binary content hash + go version
//   - enabled check names) — editing any analyzer or flipping a
//     check invalidates the whole cache;
//   - the package's import path and the contents of its Go files;
//   - recursively, the keys of its non-standard-library imports — the
//     summary layer propagates blocking facts and unit tags across
//     package boundaries, so a dependency edit must re-analyze its
//     dependents. Standard-library content is pinned by the go
//     version in the salt.
//
// The cached value is the package's full (pre-baseline) diagnostic
// list; an empty list — the common case — is cached too, which is
// what makes the warm path fast.
type FindingsCache struct {
	dir  string
	salt string

	// keys maps import path -> content key, memoized across the
	// recursive dependency walk.
	keys map[string]string
	meta map[string]*ListedPackage
}

// NewFindingsCache opens (creating if needed) a cache directory.
func NewFindingsCache(dir, salt string) (*FindingsCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FindingsCache{
		dir:  dir,
		salt: salt,
		keys: map[string]string{},
		meta: map[string]*ListedPackage{},
	}, nil
}

// Index computes content keys for every non-std package in the
// listing. Must be called before Get/Put.
func (c *FindingsCache) Index(listed []*ListedPackage) error {
	for _, p := range listed {
		c.meta[p.ImportPath] = p
	}
	for _, p := range listed {
		if p.Standard || p.ImportPath == "unsafe" {
			continue
		}
		if _, err := c.key(p.ImportPath); err != nil {
			return err
		}
	}
	return nil
}

// key computes (and memoizes) one package's content key.
func (c *FindingsCache) key(path string) (string, error) {
	if k, ok := c.keys[path]; ok {
		return k, nil
	}
	p, ok := c.meta[path]
	if !ok {
		return "", fmt.Errorf("findings cache: package %s not in listing", path)
	}
	h := sha256.New()
	fmt.Fprintf(h, "salt %s\npkg %s\n", c.salt, p.ImportPath)
	for _, name := range p.GoFiles {
		data, err := os.ReadFile(filepath.Join(p.Dir, name))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "file %s %d\n", name, len(data))
		h.Write(data)
	}
	imports := append([]string(nil), p.Imports...)
	sort.Strings(imports)
	for _, imp := range imports {
		if mapped, ok := p.ImportMap[imp]; ok {
			imp = mapped
		}
		dep, ok := c.meta[imp]
		if !ok || dep.Standard || imp == "unsafe" || imp == "C" {
			fmt.Fprintf(h, "std %s\n", imp)
			continue
		}
		dk, err := c.key(imp)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "dep %s %s\n", imp, dk)
	}
	k := hex.EncodeToString(h.Sum(nil))
	c.keys[path] = k
	return k, nil
}

// cacheEntry is the on-disk record.
type cacheEntry struct {
	Version int          `json:"version"`
	Package string       `json:"pkg"`
	Diags   []Diagnostic `json:"diags"`
}

const cacheVersion = 1

// file returns the entry path for a package's current key.
func (c *FindingsCache) file(path string) (string, bool) {
	k, ok := c.keys[path]
	if !ok {
		return "", false
	}
	return filepath.Join(c.dir, k[:2], k[2:]+".json"), true
}

// Get returns the cached findings for the package's current content
// key.
func (c *FindingsCache) Get(path string) ([]Diagnostic, bool) {
	name, ok := c.file(path)
	if !ok {
		return nil, false
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Version != cacheVersion || e.Package != path {
		return nil, false
	}
	return e.Diags, true
}

// Put stores the package's findings under its current content key.
func (c *FindingsCache) Put(path string, diags []Diagnostic) error {
	name, ok := c.file(path)
	if !ok {
		return fmt.Errorf("findings cache: no key for %s", path)
	}
	if diags == nil {
		diags = []Diagnostic{}
	}
	data, err := json.Marshal(cacheEntry{Version: cacheVersion, Package: path, Diags: diags})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(name), 0o755); err != nil {
		return err
	}
	tmp := name + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, name)
}
