package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
)

// ListedPackage is the subset of `go list -json` output the loader and
// the findings cache consume.
type ListedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	Error      *struct{ Err string }
}

// Package is one loaded, parsed and type-checked package, ready to be
// handed to analyzers as a Pass.
type Package struct {
	Path     string
	Dir      string
	Fset     *token.FileSet
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
	Standard bool
	// TypeErrors holds soft type-checking problems. Analyzers still
	// run on a package with type errors, but the driver surfaces them.
	TypeErrors []error
}

// Loader loads Go packages without golang.org/x/tools: package
// discovery is delegated to `go list -deps -json` (which understands
// modules, build constraints and std vendoring) and type checking to
// go/types.
//
// Dependencies are checked with IgnoreFuncBodies — analyzers only need
// their exported API — while the packages named for analysis get a
// full check with a populated types.Info. CGO_ENABLED=0 is forced so
// every package, including net, resolves to its pure-Go file set and
// type-checks from source alone.
//
// Loading is parallel: each target package is parsed and fully checked
// in its own goroutine (bounded by GOMAXPROCS), and the shared
// API-view cache is populated on demand with per-path once semantics —
// the first goroutine to need a dependency builds it, everyone else
// waits on that build. token.FileSet and parser are safe for
// concurrent use; go/types is safe as long as every import resolves to
// a completed package, which the once-guard guarantees.
type Loader struct {
	Fset *token.FileSet
	// GoCmd overrides the go tool path (default "go").
	GoCmd string
	// Dir is the working directory for go list (default: current).
	Dir string

	// api memoizes dependency packages checked without function
	// bodies, keyed by resolved import path, with once-per-path build
	// semantics for parallel loads.
	apiMu sync.Mutex
	api   map[string]*apiEntry

	// meta caches go list output keyed by resolved import path.
	metaMu sync.Mutex
	meta   map[string]*ListedPackage
}

// apiEntry is one memoized API-view build.
type apiEntry struct {
	once sync.Once
	pkg  *types.Package
	err  error
}

// NewLoader returns a Loader with a fresh FileSet.
func NewLoader(dir string) *Loader {
	l := &Loader{
		Fset:  token.NewFileSet(),
		GoCmd: "go",
		Dir:   dir,
		api:   map[string]*apiEntry{},
		meta:  map[string]*ListedPackage{},
	}
	unsafeEntry := &apiEntry{pkg: types.Unsafe}
	unsafeEntry.once.Do(func() {})
	l.api["unsafe"] = unsafeEntry
	return l
}

// goList runs `go list -e -deps -json` over the patterns and returns
// the decoded packages in dependency-first order.
func (l *Loader) goList(patterns []string) ([]*ListedPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-json"}, patterns...)
	cmd := exec.Command(l.GoCmd, args...)
	cmd.Dir = l.Dir
	cmd.Env = appendEnvNoCgo()
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}
	var pkgs []*ListedPackage
	dec := json.NewDecoder(&out)
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// List resolves the patterns to their dependency closure without
// type-checking anything. The driver uses the listing to compute
// findings-cache keys before deciding whether a full load is needed.
func (l *Loader) List(patterns ...string) ([]*ListedPackage, error) {
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	l.metaMu.Lock()
	for _, p := range listed {
		l.meta[p.ImportPath] = p
	}
	l.metaMu.Unlock()
	return listed, nil
}

// Load loads the packages matching the patterns (plus, transitively,
// their dependencies) and returns fully type-checked Packages for the
// matched, non-standard-library packages only, sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.List(patterns...)
	if err != nil {
		return nil, err
	}
	var targets []*ListedPackage
	for _, p := range listed {
		if !p.Standard && p.ImportPath != "unsafe" {
			targets = append(targets, p)
		}
	}
	return l.LoadTargets(targets)
}

// LoadTargets fully type-checks the given listed packages in parallel,
// resolving dependencies through the shared API cache.
func (l *Loader) LoadTargets(targets []*ListedPackage) ([]*Package, error) {
	var (
		mu    sync.Mutex
		out   []*Package
		first error
		wg    sync.WaitGroup
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, p := range targets {
		wg.Add(1)
		sem <- struct{}{}
		go func(p *ListedPackage) {
			defer wg.Done()
			defer func() { <-sem }()
			full, err := l.fullCheck(p)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if first == nil {
					first = err
				}
				return
			}
			out = append(out, full)
		}(p)
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir type-checks a single directory of Go files as the package
// path given, resolving imports through resolve (testdata fixtures)
// and falling back to the loader's module/std view. It powers the
// analysistest harness.
func (l *Loader) LoadDir(dir, path string, resolve func(path string) (*types.Package, error)) (*Package, error) {
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	imp := importerFunc(func(p string) (*types.Package, error) {
		if resolve != nil {
			if pkg, err := resolve(p); err != nil || pkg != nil {
				return pkg, err
			}
		}
		return l.importByPath(p, nil)
	})
	return l.check(path, dir, files, imp, false)
}

// parseDir parses every non-test .go file in dir.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, m := range matches {
		if isTestFile(m) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, m, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

func isTestFile(name string) bool {
	return len(name) > len("_test.go") &&
		name[len(name)-len("_test.go"):] == "_test.go"
}

// lookupMeta fetches (or go-list-fetches) the listing for one path.
func (l *Loader) lookupMeta(path string) (*ListedPackage, error) {
	l.metaMu.Lock()
	p, ok := l.meta[path]
	l.metaMu.Unlock()
	if ok {
		return p, nil
	}
	// Outside the -deps closure (fixture importing an uncovered
	// package): ask go list for it and its deps.
	extra, err := l.goList([]string{path})
	if err != nil {
		return nil, err
	}
	l.metaMu.Lock()
	defer l.metaMu.Unlock()
	for _, e := range extra {
		if _, seen := l.meta[e.ImportPath]; !seen {
			l.meta[e.ImportPath] = e
		}
	}
	if p, ok = l.meta[path]; !ok {
		return nil, fmt.Errorf("package %s not found by go list", path)
	}
	return p, nil
}

// apiPackage returns the exported-API view of the import path,
// type-checking it (without function bodies) on first use. Concurrent
// callers share one build per path.
func (l *Loader) apiPackage(path string) (*types.Package, error) {
	l.apiMu.Lock()
	entry, ok := l.api[path]
	if !ok {
		entry = &apiEntry{}
		l.api[path] = entry
	}
	l.apiMu.Unlock()
	entry.once.Do(func() {
		entry.pkg, entry.err = l.buildAPI(path)
	})
	return entry.pkg, entry.err
}

// buildAPI parses and API-checks one dependency package.
func (l *Loader) buildAPI(path string) (*types.Package, error) {
	p, err := l.lookupMeta(path)
	if err != nil {
		return nil, err
	}
	if p.Error != nil {
		return nil, fmt.Errorf("package %s: %s", path, p.Error.Err)
	}
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(p.Dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, err := l.check(p.ImportPath, p.Dir, files, l.importerFor(p), true)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// fullCheck checks a target package with bodies and a full types.Info
// for the analyzers.
func (l *Loader) fullCheck(p *ListedPackage) (*Package, error) {
	if p.Error != nil {
		return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
	}
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, err := l.check(p.ImportPath, p.Dir, files, l.importerFor(p), false)
	if err != nil {
		return nil, err
	}
	pkg.Standard = p.Standard
	return pkg, nil
}

// importerFor resolves a package's imports honoring its ImportMap
// (std vendoring) through the API cache.
func (l *Loader) importerFor(p *ListedPackage) types.Importer {
	return importerFunc(func(path string) (*types.Package, error) {
		return l.importByPath(path, p.ImportMap)
	})
}

func (l *Loader) importByPath(path string, importMap map[string]string) (*types.Package, error) {
	if mapped, ok := importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return l.apiPackage(path)
}

// check runs go/types over the files.
func (l *Loader) check(path, dir string, files []*ast.File, imp types.Importer, apiOnly bool) (*Package, error) {
	var softErrs []error
	conf := types.Config{
		Importer:         imp,
		IgnoreFuncBodies: apiOnly,
		FakeImportC:      true,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			softErrs = append(softErrs, err)
		},
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{
		Path:       path,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: softErrs,
	}, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// appendEnvNoCgo returns the process environment with CGO_ENABLED=0
// so go list selects the pure-Go file sets that go/types can check
// from source.
func appendEnvNoCgo() []string {
	return append(os.Environ(), "CGO_ENABLED=0")
}
