// Command mainpkg shows ctxcheck's one sanctioned home for root
// contexts: package main mints them freely.
package main

import "context"

func main() {
	ctx := context.Background()
	helper(ctx)
}

func helper(ctx context.Context) {}
