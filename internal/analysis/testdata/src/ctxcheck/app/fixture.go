// Package app is the fixture for the context-propagation analyzer:
// root contexts minted outside main, and ctx-receiving functions that
// drop the context on the floor when a Context-accepting sibling
// exists.
package app

import "context"

func mint() {
	_ = context.Background() // want `context\.Background\(\) outside package main`
}

func mintTODO() {
	_ = context.TODO() // want `context\.TODO\(\) outside package main`
}

// Worse: the function already has a ctx and mints a fresh root anyway.
func detach(ctx context.Context) {
	_ = context.Background() // want `context\.Background\(\) inside a function that already receives a ctx`
}

// Run has a Context-taking sibling; a ctx-receiving caller must use it.
func Run() {}

func RunContext(ctx context.Context) {}

func driver(ctx context.Context) {
	Run() // want `Run called from a ctx-receiving function, but RunContext exists`
	RunContext(ctx)
}

// No sibling: nothing to demand.
func Step() {}

func stepper(ctx context.Context) {
	Step()
}

// Callers without a ctx of their own are not asked to invent one.
func plain() {
	Run()
}

// An audited exception is suppressed.
func allowed(ctx context.Context) {
	//ampvet:allow ctxcheck the detached context is intentional: the job outlives this request
	_ = context.Background()
}
