// Package outofscope is not a simulation-core package: determinism
// does not apply, so nothing here is flagged.
package outofscope

import "time"

// Stamp may read the wall clock freely.
func Stamp() time.Time { return time.Now() }

// Walk may iterate maps freely.
func Walk(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
