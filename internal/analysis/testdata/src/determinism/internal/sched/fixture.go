// Package sched is a determinism fixture: its import path ends in
// internal/sched, so the analyzer treats it as simulation core.
package sched

import (
	"math/rand" // want `import of math/rand breaks seeded reproducibility`
	"time"
)

// Tick reads the wall clock and global randomness: both defeat
// identical-seed reproduction.
func Tick() float64 {
	t := time.Now()   // want `time\.Now reads the wall clock`
	_ = time.Since(t) // want `time\.Since reads the wall clock`
	return rand.Float64()
}

// Histogram walks a map whose order feeds the returned value.
func Histogram(m map[int]int) int {
	sum, last := 0, 0
	for k, v := range m { // want `map iteration order is randomized`
		sum += k * v
		last = k
	}
	return sum ^ last
}

// Drain never observes the iteration order: not flagged.
func Drain(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Allowed carries the audited-exception directive.
func Allowed() time.Time {
	//ampvet:allow determinism fixture demonstrates an audited wall-clock read
	return time.Now()
}
