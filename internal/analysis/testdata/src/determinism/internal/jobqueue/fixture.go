// Package jobqueue is a determinism fixture: its import path ends in
// internal/jobqueue, so the service layer's queue is held to the same
// no-wall-clock rules as the simulation core.
package jobqueue

import "time"

// Backoff reads the wall clock without an audited allow.
func Backoff() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// Allowed documents the audited exception the real queue uses for its
// retry backoff and latency histograms.
func Allowed() *time.Timer {
	return time.NewTimer(time.Millisecond) //ampvet:allow determinism retry backoff is inherently wall-clock
}

// Fanout observes map iteration order.
func Fanout(jobs map[int]func()) int {
	n := 0
	for id, f := range jobs { // want `map iteration order is randomized`
		f()
		n += id
	}
	return n
}
