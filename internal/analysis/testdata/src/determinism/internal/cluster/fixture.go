// Package cluster is a determinism fixture: its import path ends in
// internal/cluster, so the fleet layer's routing and claim bookkeeping
// are held to the same no-wall-clock rules as the simulation core —
// placement must be a pure function of membership and spec bytes.
package cluster

import "time"

// LeaseLeft reads the wall clock without an audited allow.
func LeaseLeft(expires time.Time) time.Duration {
	return time.Until(expires) // want `time\.Until reads the wall clock`
}

// Heartbeat mints a ticker without an audited allow.
func Heartbeat() *time.Ticker {
	return time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
}

// Allowed documents the audited exception the real node uses for its
// claim leases and heartbeat cadence.
func Allowed() time.Time {
	return time.Now() //ampvet:allow determinism claim leases are inherently wall-clock
}

// VoidAll observes map iteration order over live claims.
func VoidAll(claims map[string]chan struct{}) {
	for key, done := range claims { // want `map iteration order is randomized`
		_ = key
		close(done)
	}
}

// VoidAllAudited mirrors the real fan-out, where the order is
// unobservable and carries an audited allow.
func VoidAllAudited(claims map[string]chan struct{}) {
	for _, done := range claims { //ampvet:allow determinism claim-void fan-out order is unobservable
		close(done)
	}
}
