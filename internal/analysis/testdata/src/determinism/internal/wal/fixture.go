// Package wal is a determinism fixture: its import path ends in
// internal/wal, so the durable journal is held to the same
// no-wall-clock rules as the simulation core — replay of the same
// segment bytes must fold to the same state on every run.
package wal

import "time"

// Frame timestamps a record with the wall clock without an audited
// allow; journal records must be ordered by sequence, not by time.
func Frame() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

// Allowed documents the audited exception for durability telemetry.
func Allowed() time.Duration {
	start := time.Now() //ampvet:allow determinism fsync latency telemetry never feeds replay state
	_ = start
	return 0
}

// Fold observes map iteration order while folding recovered records.
func Fold(records map[string]int) int {
	n := 0
	for _, v := range records { // want `map iteration order is randomized`
		n += v
	}
	return n
}
