// Package directives2 exercises directive placement interplay: an
// allow suppresses from its own line, from the line above, and from a
// function's doc comment. (Unknown-verb reporting is covered by the
// directives fixture via TestMalformedDirectives.)
package directives2

import "context"

// Doc-comment allow: covers every finding in the function.
//
//ampvet:allow ctxcheck doc-comment allows span the whole declaration
func docAllowed() {
	_ = context.Background()
	_ = context.TODO()
}

func lineAllowed() {
	_ = context.Background() //ampvet:allow ctxcheck same-line allows suppress their own line
}

func lineAboveAllowed() {
	//ampvet:allow ctxcheck line-above allows suppress the next line
	_ = context.Background()
}

// An allow for one check does not leak onto another's findings.
func wrongCheck() {
	//ampvet:allow determinism this names the wrong check, so ctxcheck still fires
	_ = context.Background() // want `context\.Background\(\) outside package main`
}
