// Package lockcheck is the fixture for the lock-discipline analyzer:
// locks held across blocking operations (including through the
// summary layer's interprocedural propagation), inconsistent
// acquisition order, and locks passed by value.
package lockcheck

import (
	"sync"
	"time"
)

type Server struct {
	mu   sync.Mutex
	wal  sync.Mutex
	jobs []int
}

// The ISSUE's seeded bug: a lock held across a channel send. If the
// receiver is slow (or gone), every other caller of publish wedges.
func (s *Server) publish(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- 1 // want `lock s\.mu held across blocking operation: channel send`
}

func (s *Server) poll(ch chan int) {
	s.mu.Lock()
	<-ch // want `lock s\.mu held across blocking operation: channel receive`
	s.mu.Unlock()
}

func (s *Server) nap() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `lock s\.mu held across blocking operation: time\.Sleep`
}

// slowHelper blocks; the summary layer must propagate that fact to
// callers so a lock held across the call is reported.
func slowHelper() {
	time.Sleep(time.Millisecond)
}

func (s *Server) indirect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	slowHelper() // want `lock s\.mu held across blocking operation: lockcheck\.slowHelper blocks: call to time\.Sleep`
}

// Unlock before the blocking operation: clean.
func (s *Server) unlockFirst(ch chan int) {
	s.mu.Lock()
	s.jobs = append(s.jobs, 1)
	s.mu.Unlock()
	ch <- 1
}

// A goroutine spawned under the lock runs after Unlock returns in the
// parent; the spawner itself does not block.
func (s *Server) spawn(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		ch <- 1
	}()
}

// A select with a default never parks: clean.
func (s *Server) trySend(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

// Inconsistent acquisition order: lockAB nests wal inside mu, lockBA
// the reverse — the classic deadlock shape.
func (s *Server) lockAB() {
	s.mu.Lock()
	s.wal.Lock()
	s.wal.Unlock()
	s.mu.Unlock()
}

func (s *Server) lockBA() {
	s.wal.Lock()
	s.mu.Lock() // want `locks lockcheck\.Server\.wal and lockcheck\.Server\.mu acquired in inconsistent order`
	s.mu.Unlock()
	s.wal.Unlock()
}

// byValue copies the mutex with the struct: the copy's lock state is
// divorced from the original's.
func byValue(s Server) { // want `parameter passes lock by value: Server contains sync\.Mutex`
	_ = s.jobs
}

// An audited exception is suppressed.
func (s *Server) allowed(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//ampvet:allow lockcheck the channel is buffered and owned by this struct; the send cannot park
	ch <- 1
}
