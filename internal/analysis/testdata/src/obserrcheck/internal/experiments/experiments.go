// Package experiments mirrors the checkpoint surface of the real
// experiments package for the obserrcheck fixture.
package experiments

// SweepCheckpoint is a minimal stand-in.
type SweepCheckpoint struct{}

// DirCheckpointer mirrors the sweep checkpoint store's API.
type DirCheckpointer struct{}

// Save mirrors the snapshot-persistence error result.
func (d *DirCheckpointer) Save(key string, snap *SweepCheckpoint) error { return nil }

// Load mirrors the snapshot-restore (snapshot, error) shape.
func (d *DirCheckpointer) Load(key string) (*SweepCheckpoint, error) { return nil, nil }
