// Package amp mirrors the error-returning shape of the real amp
// package for the obserrcheck fixture.
package amp

import "errors"

// System is a minimal stand-in.
type System struct{}

// NewSystem mirrors the real constructor's (system, error) shape.
func NewSystem(valid bool) (*System, error) {
	if !valid {
		return nil, errors.New("bad config")
	}
	return &System{}, nil
}

// Run mirrors the real (Result, error) shape.
func (s *System) Run(limit uint64) (uint64, error) { return limit, nil }
