// Package server mirrors the service-layer surface of the real server
// package for the obserrcheck fixture.
package server

import "context"

// JobSpec is a minimal stand-in.
type JobSpec struct{}

// Server mirrors the service's must-check API.
type Server struct{}

// Submit mirrors the job submission's (entry, error) shape.
func (s *Server) Submit(sp JobSpec) (*JobSpec, error) { return &sp, nil }

// Drain mirrors the graceful-shutdown error result.
func (s *Server) Drain(ctx context.Context) error { return nil }

// RecoveryStats is a minimal stand-in.
type RecoveryStats struct{}

// Recover mirrors journal replay's (stats, error) shape.
func (s *Server) Recover() (RecoveryStats, error) { return RecoveryStats{}, nil }

// Cache mirrors the result cache's persistence API.
type Cache struct{}

// Save mirrors disk persistence's error result.
func (c *Cache) Save() error { return nil }

// Load mirrors cache warm-up's error result.
func (c *Cache) Load() error { return nil }
