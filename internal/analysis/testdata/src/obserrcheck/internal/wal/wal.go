// Package wal mirrors the durable journal's must-check surface for
// the obserrcheck fixture.
package wal

// Record is a minimal stand-in.
type Record struct{}

// Log mirrors the append-only journal's API.
type Log struct{}

// Append mirrors the framed-write error result.
func (l *Log) Append(rec Record) error { return nil }

// Sync mirrors the fsync error result.
func (l *Log) Sync() error { return nil }

// Close mirrors the final-flush error result.
func (l *Log) Close() error { return nil }
