// Package telemetry mirrors the sink-closing surface of the real
// telemetry package for the obserrcheck fixture.
package telemetry

// Telemetry owns buffered sinks; only Close reports the final write.
type Telemetry struct{}

// Close flushes and closes every sink.
func (t *Telemetry) Close() error { return nil }
