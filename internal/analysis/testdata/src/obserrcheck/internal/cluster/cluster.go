// Package cluster mirrors the fleet-layer surface of the real cluster
// package for the obserrcheck fixture.
package cluster

import "context"

// Config is a minimal stand-in.
type Config struct{}

// Node mirrors the fleet node's must-check API.
type Node struct{}

// New mirrors node construction's (node, error) shape.
func New(cfg Config) (*Node, error) { return &Node{}, nil }

// Start mirrors the heartbeat/steal-loop launch error.
func (n *Node) Start(ctx context.Context) error { return nil }

// Close mirrors the shutdown error (leaked loops on drop).
func (n *Node) Close() error { return nil }
