// Package jobqueue mirrors the submission/drain surface of the real
// jobqueue package for the obserrcheck fixture.
package jobqueue

import "context"

// Task mirrors the real task shape.
type Task func(ctx context.Context) error

// SubmitOptions is a minimal stand-in.
type SubmitOptions struct{}

// Job is a minimal stand-in.
type Job struct{}

// Queue mirrors the real queue's must-check API.
type Queue struct{}

// Submit mirrors the blocking submission's (job, error) shape.
func (q *Queue) Submit(ctx context.Context, task Task, opts SubmitOptions) (*Job, error) {
	return &Job{}, nil
}

// TrySubmit mirrors the non-blocking submission's (job, error) shape.
func (q *Queue) TrySubmit(task Task, opts SubmitOptions) (*Job, error) {
	return &Job{}, nil
}

// Drain mirrors the graceful-stop error result.
func (q *Queue) Drain(ctx context.Context) error { return nil }
