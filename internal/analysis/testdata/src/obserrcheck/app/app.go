// Package app discards errors from the checked APIs in every way the
// analyzer recognizes.
package app

import (
	"obserrcheck/internal/amp"
	"obserrcheck/internal/telemetry"
)

// Leak drops every error.
func Leak(tel *telemetry.Telemetry) {
	amp.NewSystem(true)           // want `error from amp\.NewSystem discarded`
	sys, _ := amp.NewSystem(true) // want `error from amp\.NewSystem assigned to blank identifier`
	sys.Run(1000)                 // want `error from System\.Run discarded`
	defer tel.Close()             // want `deferred Telemetry\.Close discards its error`
	go tel.Close()                // want `go Telemetry\.Close discards its error`
}

// Handled checks every error: nothing to flag.
func Handled(tel *telemetry.Telemetry) error {
	sys, err := amp.NewSystem(true)
	if err != nil {
		return err
	}
	if _, err := sys.Run(1000); err != nil {
		return err
	}
	return tel.Close()
}

// Allowed documents an audited discard.
func Allowed(tel *telemetry.Telemetry) {
	_ = tel.Close() //ampvet:allow obserrcheck fixture demonstrates an audited discard
}
