// Package app discards errors from the checked APIs in every way the
// analyzer recognizes.
package app

import (
	"context"
	"net/http"

	"obserrcheck/internal/amp"
	"obserrcheck/internal/cluster"
	"obserrcheck/internal/experiments"
	"obserrcheck/internal/jobqueue"
	"obserrcheck/internal/server"
	"obserrcheck/internal/telemetry"
	"obserrcheck/internal/wal"
)

// Leak drops every error.
func Leak(tel *telemetry.Telemetry) {
	amp.NewSystem(true)           // want `error from amp\.NewSystem discarded`
	sys, _ := amp.NewSystem(true) // want `error from amp\.NewSystem assigned to blank identifier`
	sys.Run(1000)                 // want `error from System\.Run discarded`
	defer tel.Close()             // want `deferred Telemetry\.Close discards its error`
	go tel.Close()                // want `go Telemetry\.Close discards its error`
}

// LeakService drops errors across the service layer.
func LeakService(ctx context.Context, q *jobqueue.Queue, s *server.Server, c *server.Cache, hs *http.Server) {
	q.Submit(ctx, nil, jobqueue.SubmitOptions{})       // want `error from Queue\.Submit discarded`
	j, _ := q.TrySubmit(nil, jobqueue.SubmitOptions{}) // want `error from Queue\.TrySubmit assigned to blank identifier`
	_ = j
	q.Drain(ctx)               // want `error from Queue\.Drain discarded`
	s.Submit(server.JobSpec{}) // want `error from Server\.Submit discarded`
	defer s.Drain(ctx)         // want `deferred Server\.Drain discards its error`
	c.Save()                   // want `error from Cache\.Save discarded`
	c.Load()                   // want `error from Cache\.Load discarded`
	go hs.Shutdown(ctx)        // want `go Server\.Shutdown discards its error`
}

// LeakDurability drops errors across the crash-safety layer.
func LeakDurability(l *wal.Log, s *server.Server, d *experiments.DirCheckpointer) {
	l.Append(wal.Record{})                      // want `error from Log\.Append discarded`
	l.Sync()                                    // want `error from Log\.Sync discarded`
	defer l.Close()                             // want `deferred Log\.Close discards its error`
	s.Recover()                                 // want `error from Server\.Recover discarded`
	d.Save("k", &experiments.SweepCheckpoint{}) // want `error from DirCheckpointer\.Save discarded`
	snap, _ := d.Load("k")                      // want `error from DirCheckpointer\.Load assigned to blank identifier`
	_ = snap
}

// HandledDurability checks every durability error: nothing to flag.
func HandledDurability(l *wal.Log, s *server.Server, d *experiments.DirCheckpointer) error {
	if err := l.Append(wal.Record{}); err != nil {
		return err
	}
	if err := l.Sync(); err != nil {
		return err
	}
	if _, err := s.Recover(); err != nil {
		return err
	}
	if _, err := d.Load("k"); err != nil {
		return err
	}
	return l.Close()
}

// HandledService checks every service-layer error: nothing to flag.
func HandledService(ctx context.Context, q *jobqueue.Queue, c *server.Cache, hs *http.Server) error {
	if _, err := q.Submit(ctx, nil, jobqueue.SubmitOptions{}); err != nil {
		return err
	}
	if err := q.Drain(ctx); err != nil {
		return err
	}
	if err := c.Save(); err != nil {
		return err
	}
	return hs.Shutdown(ctx)
}

// LeakFleet drops errors across the fleet layer.
func LeakFleet(ctx context.Context, n *cluster.Node) {
	cluster.New(cluster.Config{})         // want `error from cluster\.New discarded`
	m, _ := cluster.New(cluster.Config{}) // want `error from cluster\.New assigned to blank identifier`
	_ = m
	n.Start(ctx)    // want `error from Node\.Start discarded`
	defer n.Close() // want `deferred Node\.Close discards its error`
}

// HandledFleet checks every fleet-layer error: nothing to flag.
func HandledFleet(ctx context.Context) error {
	n, err := cluster.New(cluster.Config{})
	if err != nil {
		return err
	}
	if err := n.Start(ctx); err != nil {
		return err
	}
	return n.Close()
}

// Handled checks every error: nothing to flag.
func Handled(tel *telemetry.Telemetry) error {
	sys, err := amp.NewSystem(true)
	if err != nil {
		return err
	}
	if _, err := sys.Run(1000); err != nil {
		return err
	}
	return tel.Close()
}

// Allowed documents an audited discard.
func Allowed(tel *telemetry.Telemetry) {
	_ = tel.Close() //ampvet:allow obserrcheck fixture demonstrates an audited discard
}
