// Package directives holds malformed //ampvet: directives; the
// framework reports each as a finding of check "ampvet".
package directives

import "time"

// ReasonLess has an allow with no reason: the directive itself is a
// finding, and it does NOT suppress anything.
func ReasonLess() time.Time {
	//ampvet:allow determinism
	return time.Now()
}

// UnknownCheck names a check that does not exist.
func UnknownCheck() int {
	//ampvet:allow nosuchcheck because I said so
	return 0
}

// UnknownVerb uses a directive verb the suite does not define: the
// spelling is reported as malformed rather than silently ignored.
func UnknownVerb() int {
	//ampvet:ignore unitcheck this verb does not exist
	return 0
}

// BadDim tags a unit the dimension table does not know.
//
//ampvet:unit furlongs
func BadDim() float64 {
	return 0
}
