// Package directives holds malformed //ampvet: directives; the
// framework reports each as a finding of check "ampvet".
package directives

import "time"

// ReasonLess has an allow with no reason: the directive itself is a
// finding, and it does NOT suppress anything.
func ReasonLess() time.Time {
	//ampvet:allow determinism
	return time.Now()
}

// UnknownCheck names a check that does not exist.
func UnknownCheck() int {
	//ampvet:allow nosuchcheck because I said so
	return 0
}
