// Package hotpathalloc exercises the //ampvet:hotpath annotation.
package hotpathalloc

import "fmt"

func sink(v any)    { _ = v }
func release(i int) { _ = i }

type counters struct {
	vals []uint64
	id   *int
}

// Step is an annotated per-cycle path: every allocation-forcing
// construct below must be flagged.
//
//ampvet:hotpath
func (c *counters) Step(now uint64) string {
	label := fmt.Sprintf("cycle-%d", now) // want `fmt\.Sprintf allocates`
	for i := 0; i < 4; i++ {
		c.vals = append(c.vals, now) // want `append in a loop may reallocate`
		defer release(i)             // want `defer in a loop allocates a defer record`
	}
	f := func() uint64 { return now } // want `closure captures now`
	_ = f
	sink(now)     // want `argument boxes uint64 into any`
	v := any(now) // want `conversion boxes uint64 into any`
	sink(c.id)    // pointers are stored directly in the interface word: no boxing
	sink(nil)     // nil never boxes
	_ = v
	return label
}

// Cold has the same constructs but no annotation: not checked.
func (c *counters) Cold(now uint64) {
	for i := 0; i < 4; i++ {
		c.vals = append(c.vals, now)
	}
	sink(fmt.Sprintf("cycle-%d", now))
}

// Warm documents an audited exception on its only violation.
//
//ampvet:hotpath
func Warm(now uint64) {
	sink(now) //ampvet:allow hotpathalloc boxing audited: only reached on the error path
}
