// Package unitcheck is the fixture for the dimensional analyzer. It
// mirrors the repo's power model in miniature: energy in nanojoules,
// elapsed cycles, derived watts and IPC/Watt, with tags on struct
// fields and function docs.
package unitcheck

type interval struct {
	Cycles    uint64  //ampvet:unit cycles
	Committed uint64  //ampvet:unit instructions
	EnergyNJ  float64 //ampvet:unit nanojoules
	Watts     float64 //ampvet:unit watts
	IPC       float64 //ampvet:unit ipc
}

// clockHz is the configured clock rate.
var clockHz = 2e9

// freq is the clock in cycles per second.
//
//ampvet:unit cycles_per_second
func freq() float64 { return clockHz }

// avgWatts derives average power from an interval's energy.
//
//ampvet:unit watts
//ampvet:unit energyNJ nanojoules
//ampvet:unit cycles cycles
func avgWatts(energyNJ float64, cycles uint64) float64 {
	seconds := float64(cycles) / freq()
	return energyNJ / seconds
}

// The ISSUE's seeded mutation: returning raw energy where average
// power was declared — the EnergyNJ-for-watts confusion the check
// exists to catch.
//
//ampvet:unit watts
//ampvet:unit energyNJ nanojoules
func mutatedWatts(energyNJ float64, cycles uint64) float64 {
	return energyNJ // want `returning nanojoules value from function declared watts`
}

func fill(iv *interval) {
	iv.Watts = iv.EnergyNJ // want `assigning nanojoules value to watts destination iv\.Watts`
	iv.IPC = float64(iv.Committed) / float64(iv.Cycles)
}

func mixedSum(iv *interval) float64 {
	return iv.EnergyNJ + float64(iv.Cycles) // want `nanojoules \+ cycles: operands have different dimensions`
}

func callMismatch(iv *interval) float64 {
	return avgWatts(float64(iv.Cycles), iv.Cycles) // want `passing cycles value to nanojoules parameter 0 of avgWatts`
}

func literalArg(iv *interval) float64 {
	return avgWatts(12.5, iv.Cycles) // want `unit-less literal passed to nanojoules parameter 0 of avgWatts`
}

// Zero literals are dimensionless by convention: resets are clean.
func reset(iv *interval) {
	iv.Watts = 0
	iv.EnergyNJ = 0
}

// Correct derivations through locals: inference carries the tag.
func derived(iv *interval) {
	e := iv.EnergyNJ
	w := e / (float64(iv.Cycles) / freq())
	iv.Watts = w
}

type comparison struct {
	// Ratio of two same-dimension quantities.
	//ampvet:unit dimensionless
	Ratio float64
}

func compare(a, b *interval) comparison {
	return comparison{Ratio: a.Watts / b.Watts}
}

func badLit(iv *interval) comparison {
	return comparison{Ratio: iv.Watts} // want `field comparison\.Ratio declared dimensionless assigned watts value`
}

// An audited exception is suppressed.
func allowed(iv *interval) float64 {
	//ampvet:allow unitcheck fixture exercises suppression of a deliberate mismatch
	return iv.EnergyNJ + float64(iv.Cycles)
}
