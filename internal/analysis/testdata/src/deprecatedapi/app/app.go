// Package app is a consumer of the deprecated surface: every use is
// flagged with migration advice.
package app

import (
	"deprecatedapi/internal/amp"
	"deprecatedapi/internal/sched"
)

// Build wires the injector through the deprecated Config field.
func Build(inj amp.SwapInjector) amp.Config {
	cfg := amp.Config{SwapInjector: inj} // want `Config\.SwapInjector is deprecated; pass amp\.WithFaultPlan`
	cfg.SwapInjector = inj               // want `Config\.SwapInjector is deprecated`
	return cfg
}

// Wire injects observers through the deprecated setter, both directly
// and through the interface.
func Wire(p *sched.Proposed, f func(window uint64) int) {
	p.SetObserver(f) // want `ObserverInjectable\.SetObserver is deprecated; pass sched\.WithObserverFactory`
	var oi sched.ObserverInjectable = p
	oi.SetObserver(f) // want `ObserverInjectable\.SetObserver is deprecated`
}

// ShimTest is the audited-exception pattern the designated shim
// regression tests use.
func ShimTest(p *sched.Proposed, f func(window uint64) int) {
	p.SetObserver(f) //ampvet:allow deprecatedapi designated shim regression test
}
