// Package app is a consumer of the deprecated surface: every use is
// flagged with migration advice.
package app

import (
	"deprecatedapi/internal/amp"
	"deprecatedapi/internal/manycore"
	"deprecatedapi/internal/sched"
)

// Build wires the injector through the deprecated Config field.
func Build(inj amp.SwapInjector) amp.Config {
	cfg := amp.Config{SwapInjector: inj} // want `Config\.SwapInjector is deprecated; pass amp\.WithFaultPlan`
	cfg.SwapInjector = inj               // want `Config\.SwapInjector is deprecated`
	return cfg
}

// Wire injects observers through the deprecated setter, both directly
// and through the interface.
func Wire(p *sched.Proposed, f func(window uint64) int) {
	p.SetObserver(f) // want `ObserverInjectable\.SetObserver is deprecated; pass sched\.WithObserverFactory`
	var oi sched.ObserverInjectable = p
	oi.SetObserver(f) // want `ObserverInjectable\.SetObserver is deprecated`
}

// ShimTest is the audited-exception pattern the designated shim
// regression tests use.
func ShimTest(p *sched.Proposed, f func(window uint64) int) {
	p.SetObserver(f) //ampvet:allow deprecatedapi designated shim regression test
}

// boolSched implements the deprecated bool-swap interface.
type boolSched struct{}

func (boolSched) Tick(v amp.View) bool { return false }

// OldSchedulers keeps using the deprecated interfaces and adapters.
func OldSchedulers(s amp.Scheduler) { // want `amp\.Scheduler is deprecated; implement amp\.MoveScheduler`
	var ms amp.MoveScheduler = amp.Legacy(s) // want `amp\.Legacy is a migration shim`
	_ = ms
}

// permSched implements the deprecated manycore permutation interface.
type permSched struct{}

func (permSched) Tick(v manycore.View) []int { return nil } // want `manycore\.View is deprecated`

// OldManycore builds a system the pre-redesign way.
func OldManycore() {
	var s manycore.Scheduler = permSched{}    // want `manycore\.Scheduler is deprecated; implement amp\.MoveScheduler`
	_, _ = manycore.NewSystem(s)              // want `manycore\.NewSystem is deprecated; use manycore\.New`
	_ = manycore.Legacy(s)                    // want `manycore\.Legacy is a migration shim`
	_, _ = manycore.New(manycore.Legacy(nil)) // want `manycore\.Legacy is a migration shim`
}

// AuditedShim shows the escape hatch for the new entries too.
func AuditedShim(s manycore.Scheduler) { //ampvet:allow deprecatedapi designated shim regression test
	_, _ = manycore.NewSystem(s) //ampvet:allow deprecatedapi designated shim regression test
}

// NewAPI uses only the unified surface: nothing to flag.
func NewAPI(ms amp.MoveScheduler) {
	_, _ = manycore.New(ms)
}
