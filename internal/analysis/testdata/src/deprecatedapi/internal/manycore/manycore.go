// Package manycore mirrors the real manycore package's deprecated
// permutation-scheduler surface. Everything here is the defining
// package, so all uses below are exempt.
package manycore

import "deprecatedapi/internal/amp"

// View is the deprecated narrow view.
type View interface{ Cycle() uint64 }

// Scheduler is the deprecated permutation interface.
type Scheduler interface {
	Tick(v View) []int
}

// System is the N×M machine.
type System struct{}

// New is the replacement constructor.
func New(s amp.MoveScheduler) (*System, error) { return &System{}, nil }

// Legacy adapts a deprecated Scheduler; calling it outside this
// package is flagged.
func Legacy(s Scheduler) amp.MoveScheduler { return nil }

// NewSystem is the deprecated constructor; its own body using the
// deprecated pieces is exempt.
func NewSystem(s Scheduler) (*System, error) { return New(Legacy(s)) }
