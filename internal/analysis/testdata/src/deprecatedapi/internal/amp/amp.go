// Package amp mirrors the real amp package's deprecated surface: a
// Config hook field superseded by an option.
package amp

// SwapInjector decides the fate of each requested swap. The interface
// itself is not deprecated.
type SwapInjector interface {
	SwapOutcome(cycle uint64) int
}

// Config carries the deprecated injector field.
type Config struct {
	Overhead uint64
	// SwapInjector is deprecated: pass WithFaultPlan instead.
	SwapInjector SwapInjector
}

// normalize touches the field inside its defining package: exempt.
func normalize(c *Config) SwapInjector { return c.SwapInjector }

var _ = normalize

// View is the scheduler's window into the system.
type View interface{ Cycle() uint64 }

// Move relocates one thread.
type Move struct{ Thread, Core int }

// MoveScheduler is the unified replacement interface.
type MoveScheduler interface {
	Tick(v View) []Move
}

// Scheduler is the deprecated bool-swap interface.
type Scheduler interface {
	Tick(v View) bool
}

// Legacy adapts a deprecated Scheduler. Declaring and implementing it
// here is exempt; calling it from another package is flagged.
func Legacy(s Scheduler) MoveScheduler { return legacyAdapter{s} }

type legacyAdapter struct{ inner Scheduler }

func (a legacyAdapter) Tick(v View) []Move {
	if a.inner.Tick(v) {
		return []Move{{Thread: 0, Core: 1}, {Thread: 1, Core: 0}}
	}
	return nil
}
