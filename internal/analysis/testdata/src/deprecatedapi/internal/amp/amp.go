// Package amp mirrors the real amp package's deprecated surface: a
// Config hook field superseded by an option.
package amp

// SwapInjector decides the fate of each requested swap. The interface
// itself is not deprecated.
type SwapInjector interface {
	SwapOutcome(cycle uint64) int
}

// Config carries the deprecated injector field.
type Config struct {
	Overhead uint64
	// SwapInjector is deprecated: pass WithFaultPlan instead.
	SwapInjector SwapInjector
}

// normalize touches the field inside its defining package: exempt.
func normalize(c *Config) SwapInjector { return c.SwapInjector }

var _ = normalize
