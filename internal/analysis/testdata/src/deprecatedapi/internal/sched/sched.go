// Package sched mirrors the real sched package's deprecated observer
// injection seam.
package sched

// ObserverInjectable is the deprecated injection interface.
type ObserverInjectable interface {
	SetObserver(factory func(window uint64) int)
}

// Proposed implements ObserverInjectable.
type Proposed struct{ factory func(window uint64) int }

// SetObserver implements ObserverInjectable. Declaring it is exempt;
// calling it from outside this package is not.
func (p *Proposed) SetObserver(factory func(window uint64) int) { p.factory = factory }
