package analysis

import (
	"go/ast"
	"go/types"
)

// DeprecatedAPIAnalyzer blocks new callers of deprecated surfaces
// while they ride out their deprecation windows:
//
//   - amp.Config.SwapInjector — superseded by amp.WithFaultPlan,
//   - sched ObserverInjectable.SetObserver — superseded by
//     sched.WithObserverFactory,
//   - the old bool/permutation scheduler interfaces (amp.Scheduler,
//     manycore.Scheduler, manycore.View) and their adapter shims
//     (amp.Legacy, manycore.Legacy, manycore.NewSystem) — superseded
//     by the unified amp.MoveScheduler / amp.View API.
//
// Uses inside the defining packages (the shim plumbing and its
// designated regression tests) are exempt; anywhere else a use needs
// an //ampvet:allow directive.
var DeprecatedAPIAnalyzer = &Analyzer{
	Name: "deprecatedapi",
	Doc: "flag uses of deprecated APIs (Config.SwapInjector, ObserverInjectable.SetObserver, " +
		"the old bool/permutation Scheduler interfaces and their Legacy shims) outside their defining packages",
	Run: runDeprecatedAPI,
}

// memberKind says what language object a deprecatedMember names.
type memberKind int

const (
	kindField    memberKind = iota // struct field
	kindMethod                     // method (any receiver)
	kindTypeName                   // named type (interface or struct)
	kindFunc                       // package-level function
)

// deprecatedMember describes one deprecated identifier.
type deprecatedMember struct {
	pkgSuffix string // defining package (uses inside it are exempt)
	name      string
	kind      memberKind
	advice    string
}

var deprecatedMembers = []deprecatedMember{
	{"internal/amp", "SwapInjector", kindField,
		"Config.SwapInjector is deprecated; pass amp.WithFaultPlan(injector) to NewSystem"},
	{"internal/sched", "SetObserver", kindMethod,
		"ObserverInjectable.SetObserver is deprecated; pass sched.WithObserverFactory(factory) to the scheduler constructor"},
	{"internal/amp", "Scheduler", kindTypeName,
		"amp.Scheduler is deprecated; implement amp.MoveScheduler (Tick returning []amp.Move) or wrap with amp.Legacy"},
	{"internal/amp", "Legacy", kindFunc,
		"amp.Legacy is a migration shim; port the scheduler to amp.MoveScheduler"},
	{"internal/manycore", "Scheduler", kindTypeName,
		"manycore.Scheduler is deprecated; implement amp.MoveScheduler (Tick returning []amp.Move) or wrap with manycore.Legacy"},
	{"internal/manycore", "View", kindTypeName,
		"manycore.View is deprecated; schedulers receive the richer amp.View"},
	{"internal/manycore", "Legacy", kindFunc,
		"manycore.Legacy is a migration shim; port the scheduler to amp.MoveScheduler"},
	{"internal/manycore", "NewSystem", kindFunc,
		"manycore.NewSystem is deprecated; use manycore.New with CoreSpec/ThreadSpec slices"},
}

func runDeprecatedAPI(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return true
			}
			for _, m := range deprecatedMembers {
				if obj.Name() != m.name || !pkgPathIs(obj.Pkg(), m.pkgSuffix) {
					continue
				}
				if pkgPathIs(pass.Pkg, m.pkgSuffix) {
					continue // the shim's own plumbing and regression tests
				}
				if deprecatedUse(obj, m.kind) {
					pass.Reportf(id.Pos(), "%s", m.advice)
				}
			}
			return true
		})
	}
	return nil
}

// deprecatedUse reports whether obj is the kind of object the member
// entry deprecates (a same-named identifier of another kind — e.g. a
// local variable called Scheduler — is not).
func deprecatedUse(obj types.Object, kind memberKind) bool {
	switch kind {
	case kindField:
		v, ok := obj.(*types.Var)
		return ok && v.IsField()
	case kindMethod:
		f, ok := obj.(*types.Func)
		return ok && f.Type().(*types.Signature).Recv() != nil
	case kindTypeName:
		_, ok := obj.(*types.TypeName)
		return ok
	case kindFunc:
		f, ok := obj.(*types.Func)
		return ok && f.Type().(*types.Signature).Recv() == nil
	}
	return false
}
