package analysis

import (
	"go/ast"
	"go/types"
)

// DeprecatedAPIAnalyzer blocks new callers of the pre-options
// instrumentation surface while it rides out its deprecation window:
//
//   - amp.Config.SwapInjector — superseded by amp.WithFaultPlan,
//   - sched ObserverInjectable.SetObserver — superseded by
//     sched.WithObserverFactory.
//
// Uses inside the defining packages (the shim plumbing itself) are
// exempt; the designated shim tests carry //ampvet:allow directives.
// The amp.SwapInjector interface type stays first-class — only the
// Config field and the setter method are deprecated.
var DeprecatedAPIAnalyzer = &Analyzer{
	Name: "deprecatedapi",
	Doc: "flag uses of the deprecated Config.SwapInjector field and ObserverInjectable.SetObserver " +
		"method outside their defining packages; use amp.WithFaultPlan / sched.WithObserverFactory",
	Run: runDeprecatedAPI,
}

// deprecatedMember describes one deprecated struct field or method.
type deprecatedMember struct {
	pkgSuffix string // defining package (uses inside it are exempt)
	name      string
	field     bool // true: struct field, false: method
	advice    string
}

var deprecatedMembers = []deprecatedMember{
	{"internal/amp", "SwapInjector", true,
		"Config.SwapInjector is deprecated; pass amp.WithFaultPlan(injector) to NewSystem"},
	{"internal/sched", "SetObserver", false,
		"ObserverInjectable.SetObserver is deprecated; pass sched.WithObserverFactory(factory) to the scheduler constructor"},
}

func runDeprecatedAPI(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return true
			}
			for _, m := range deprecatedMembers {
				if obj.Name() != m.name || !pkgPathIs(obj.Pkg(), m.pkgSuffix) {
					continue
				}
				if pkgPathIs(pass.Pkg, m.pkgSuffix) {
					continue // the shim's own plumbing
				}
				switch o := obj.(type) {
				case *types.Var:
					if m.field && o.IsField() {
						pass.Reportf(id.Pos(), "%s", m.advice)
					}
				case *types.Func:
					if !m.field && o.Type().(*types.Signature).Recv() != nil {
						pass.Reportf(id.Pos(), "%s", m.advice)
					}
				}
			}
			return true
		})
	}
	return nil
}
