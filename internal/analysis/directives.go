package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Source directives recognized by the suite:
//
//	//ampvet:hotpath
//	    Marks the function whose doc comment contains it as a
//	    per-cycle hot path; hotpathalloc checks its body.
//
//	//ampvet:allow <check> <reason>
//	    Suppresses findings of <check> on the directive's line, the
//	    line below a standalone directive, or — when the directive
//	    sits in a function's doc comment — the whole function. The
//	    reason is mandatory; ampvet reports reason-less or unknown
//	    directives as findings of check "ampvet".
//
//	//ampvet:unit <dim>
//	//ampvet:unit <param> <dim>
//	    Declares the physical dimension of a named type, struct
//	    field or function result (first form), or of a named
//	    parameter when it appears in a function's doc comment
//	    (second form). unitcheck propagates the dimensions through
//	    expressions; see units.go for the dimension vocabulary.
//
// Any other //ampvet:<verb> spelling is a malformed directive: a
// misspelled marker that silently suppresses nothing is worse than a
// loud error.
const (
	directivePrefix = "//ampvet:"
	allowPrefix     = "//ampvet:allow"
	hotpathMarker   = "//ampvet:hotpath"
	unitPrefix      = "//ampvet:unit"
)

// lineKey identifies one source line.
type lineKey struct {
	file string
	line int
}

// lineRange is a file-scoped inclusive line span (a function body
// covered by a doc-comment allow).
type lineRange struct {
	file       string
	start, end int
}

// directiveIndex holds a package's parsed //ampvet: directives.
type directiveIndex struct {
	// lines maps check name -> source lines an allow covers.
	lines map[string]map[lineKey]bool
	// ranges maps check name -> function spans an allow covers.
	ranges map[string][]lineRange
	// malformed collects invalid directives as findings.
	malformed []Diagnostic
}

// indexDirectives scans every comment in the files.
func indexDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{
		lines:  map[string]map[lineKey]bool{},
		ranges: map[string][]lineRange{},
	}
	valid := map[string]bool{}
	for _, a := range All() {
		valid[a.Name] = true
	}
	for _, f := range files {
		// Map each doc comment to its function's line span so an
		// allow in the doc covers the whole body.
		funcSpan := map[*ast.CommentGroup]lineRange{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			funcSpan[fd.Doc] = lineRange{
				file:  fset.Position(fd.Pos()).Filename,
				start: fset.Position(fd.Pos()).Line,
				end:   fset.Position(fd.End()).Line,
			}
		}
		for _, cg := range f.Comments {
			span, inFuncDoc := funcSpan[cg]
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				bad := func(msg string) {
					idx.malformed = append(idx.malformed, Diagnostic{
						Pos: pos, File: pos.Filename, Line: pos.Line,
						Column: pos.Column, Check: "ampvet", Message: msg,
					})
				}
				switch {
				case strings.HasPrefix(text, allowPrefix):
					idx.indexAllow(text, pos, span, inFuncDoc, valid, bad)
				case strings.HasPrefix(text, unitPrefix):
					// Association with the tagged declaration happens in
					// units.go; here only the spelling is validated.
					validateUnitDirective(text, bad)
				case strings.HasPrefix(text, hotpathMarker):
					// Marker only; no arguments to validate.
				default:
					verb := strings.TrimPrefix(text, directivePrefix)
					if i := strings.IndexAny(verb, " \t"); i >= 0 {
						verb = verb[:i]
					}
					bad("unknown directive ampvet:" + verb +
						" (have ampvet:allow, ampvet:hotpath, ampvet:unit)")
				}
			}
		}
	}
	return idx
}

// indexAllow parses one //ampvet:allow directive into the index.
func (idx *directiveIndex) indexAllow(text string, pos token.Position, span lineRange, inFuncDoc bool, valid map[string]bool, bad func(string)) {
	fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
	if len(fields) == 0 {
		bad("ampvet:allow needs a check name and a reason")
		return
	}
	check := fields[0]
	if !valid[check] {
		bad("ampvet:allow names unknown check " + check + " (have " + checkNames() + ")")
		return
	}
	if len(fields) < 2 {
		bad("ampvet:allow " + check + " needs a reason — audited exceptions must say why")
		return
	}
	if inFuncDoc {
		idx.ranges[check] = append(idx.ranges[check], span)
		return
	}
	if idx.lines[check] == nil {
		idx.lines[check] = map[lineKey]bool{}
	}
	// The directive's own line and the next one: a trailing comment
	// allows its statement, a standalone comment allows the line
	// below it.
	idx.lines[check][lineKey{pos.Filename, pos.Line}] = true
	idx.lines[check][lineKey{pos.Filename, pos.Line + 1}] = true
}

// validateUnitDirective checks an //ampvet:unit spelling: one or two
// fields, the last of which must be a known dimension name.
func validateUnitDirective(text string, bad func(string)) {
	fields := strings.Fields(strings.TrimPrefix(text, unitPrefix))
	switch len(fields) {
	case 1, 2:
		dim := fields[len(fields)-1]
		if _, ok := parseDim(dim); !ok {
			bad("ampvet:unit names unknown dimension " + dim + " (have " + dimNames() + ")")
		}
	default:
		bad("ampvet:unit needs <dim> or <param> <dim>")
	}
}

// allowed reports whether a finding of check at position is covered by
// an allow directive.
func (idx *directiveIndex) allowed(check string, pos token.Position) bool {
	if idx == nil {
		return false
	}
	if idx.lines[check][lineKey{pos.Filename, pos.Line}] {
		return true
	}
	for _, r := range idx.ranges[check] {
		if r.file == pos.Filename && r.start <= pos.Line && pos.Line <= r.end {
			return true
		}
	}
	return false
}

// isHotPath reports whether the function declaration carries the
// //ampvet:hotpath marker in its doc comment.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathMarker) {
			return true
		}
	}
	return false
}
