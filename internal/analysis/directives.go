package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Source directives recognized by the suite:
//
//	//ampvet:hotpath
//	    Marks the function whose doc comment contains it as a
//	    per-cycle hot path; hotpathalloc checks its body.
//
//	//ampvet:allow <check> <reason>
//	    Suppresses findings of <check> on the directive's line, the
//	    line below a standalone directive, or — when the directive
//	    sits in a function's doc comment — the whole function. The
//	    reason is mandatory; ampvet reports reason-less or unknown
//	    directives as findings of check "ampvet".
const (
	allowPrefix   = "//ampvet:allow"
	hotpathMarker = "//ampvet:hotpath"
)

// lineKey identifies one source line.
type lineKey struct {
	file string
	line int
}

// lineRange is a file-scoped inclusive line span (a function body
// covered by a doc-comment allow).
type lineRange struct {
	file       string
	start, end int
}

// directiveIndex holds a package's parsed //ampvet: directives.
type directiveIndex struct {
	// lines maps check name -> source lines an allow covers.
	lines map[string]map[lineKey]bool
	// ranges maps check name -> function spans an allow covers.
	ranges map[string][]lineRange
	// malformed collects invalid directives as findings.
	malformed []Diagnostic
}

// indexDirectives scans every comment in the files.
func indexDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{
		lines:  map[string]map[lineKey]bool{},
		ranges: map[string][]lineRange{},
	}
	valid := map[string]bool{}
	for _, a := range All() {
		valid[a.Name] = true
	}
	for _, f := range files {
		// Map each doc comment to its function's line span so an
		// allow in the doc covers the whole body.
		funcSpan := map[*ast.CommentGroup]lineRange{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			funcSpan[fd.Doc] = lineRange{
				file:  fset.Position(fd.Pos()).Filename,
				start: fset.Position(fd.Pos()).Line,
				end:   fset.Position(fd.End()).Line,
			}
		}
		for _, cg := range f.Comments {
			span, inFuncDoc := funcSpan[cg]
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				bad := func(msg string) {
					idx.malformed = append(idx.malformed, Diagnostic{
						Pos: pos, File: pos.Filename, Line: pos.Line,
						Column: pos.Column, Check: "ampvet", Message: msg,
					})
				}
				if len(fields) == 0 {
					bad("ampvet:allow needs a check name and a reason")
					continue
				}
				check := fields[0]
				if !valid[check] {
					bad("ampvet:allow names unknown check " + check + " (have " + checkNames() + ")")
					continue
				}
				if len(fields) < 2 {
					bad("ampvet:allow " + check + " needs a reason — audited exceptions must say why")
					continue
				}
				if inFuncDoc {
					idx.ranges[check] = append(idx.ranges[check], span)
					continue
				}
				if idx.lines[check] == nil {
					idx.lines[check] = map[lineKey]bool{}
				}
				// The directive's own line and the next one: a
				// trailing comment allows its statement, a standalone
				// comment allows the line below it.
				idx.lines[check][lineKey{pos.Filename, pos.Line}] = true
				idx.lines[check][lineKey{pos.Filename, pos.Line + 1}] = true
			}
		}
	}
	return idx
}

// allowed reports whether a finding of check at position is covered by
// an allow directive.
func (idx *directiveIndex) allowed(check string, pos token.Position) bool {
	if idx == nil {
		return false
	}
	if idx.lines[check][lineKey{pos.Filename, pos.Line}] {
		return true
	}
	for _, r := range idx.ranges[check] {
		if r.file == pos.Filename && r.start <= pos.Line && pos.Line <= r.end {
			return true
		}
	}
	return false
}

// isHotPath reports whether the function declaration carries the
// //ampvet:hotpath marker in its doc comment.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathMarker) {
			return true
		}
	}
	return false
}
