package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxCheckAnalyzer enforces context hygiene:
//
//   - context.Background() and context.TODO() are banned outside
//     package main: a library that mints its own root context detaches
//     its work from the caller's cancellation and deadline, which is
//     exactly how the server's drain guarantees rot. (Test files are
//     never analyzed, so tests stay free to use Background.)
//   - a function that receives a ctx must thread it: calling the
//     non-context variant of a function whose Context-taking sibling
//     exists (Run when RunContext is defined, Drain when DrainContext
//     is, ...) silently drops the caller's cancellation;
//   - likewise, passing a fresh Background()/TODO() to a callee's ctx
//     parameter inside a ctx-receiving function is a dropped context
//     even in package main.
var CtxCheckAnalyzer = &Analyzer{
	Name: "ctxcheck",
	Doc: "ban context.Background/TODO outside main and require ctx-receiving functions " +
		"to thread their context to every callee that accepts one",
	Run: runCtxCheck,
}

func runCtxCheck(pass *Pass) error {
	isMain := pass.Pkg != nil && pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hasCtx := funcHasCtxParam(pass.Info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeOf(pass.Info, call)
				if callee == nil {
					return true
				}
				if isBackgroundOrTODO(callee) {
					switch {
					case hasCtx:
						pass.Reportf(call.Pos(),
							"context.%s() inside a function that already receives a ctx — thread the caller's context",
							callee.Name())
					case !isMain:
						pass.Reportf(call.Pos(),
							"context.%s() outside package main — accept a ctx from the caller instead of minting a root context",
							callee.Name())
					}
					return true
				}
				if hasCtx {
					checkContextSibling(pass, call, callee)
				}
				return true
			})
		}
	}
	return nil
}

// checkContextSibling flags a call to X from a ctx-receiving function
// when a sibling XContext exists (same package, same receiver) and X
// itself takes no context: the caller had a ctx to thread and chose
// the variant that drops it.
func checkContextSibling(pass *Pass, call *ast.CallExpr, callee *types.Func) {
	if strings.HasSuffix(callee.Name(), "Context") {
		return
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil {
		return
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return // already accepts one; Background misuse is caught above
		}
	}
	key := funcKey(callee)
	if key == "" || !pass.Sum.HasFunc(key+"Context") {
		return
	}
	sibling := pass.Sum.FuncByKey(key + "Context")
	if sibling == nil || !sibling.CtxParam {
		return
	}
	pass.Reportf(call.Pos(),
		"%s called from a ctx-receiving function, but %sContext exists — thread the context",
		callee.Name(), callee.Name())
}

// funcHasCtxParam reports whether the declaration has a
// context.Context parameter.
func funcHasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	obj, _ := info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return false
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isBackgroundOrTODO matches context.Background / context.TODO.
func isBackgroundOrTODO(f *types.Func) bool {
	return f.Pkg() != nil && f.Pkg().Path() == "context" &&
		(f.Name() == "Background" || f.Name() == "TODO")
}
