package analysis

import (
	"go/ast"
	"go/types"
)

// simCoreSuffixes are the packages whose behavior must be a pure
// function of configuration and seed: everything a simulated cycle
// touches, plus the experiments layer that aggregates results.
var simCoreSuffixes = []string{
	"internal/amp",
	"internal/sched",
	"internal/cpu",
	"internal/interval",
	"internal/monitor",
	"internal/fault",
	"internal/workload",
	"internal/manycore",
	"internal/experiments",
	"internal/jobqueue",
	"internal/server",
	"internal/wal",
	// The fleet layer routes by content address: placement and claim
	// bookkeeping must be pure functions of membership and spec bytes,
	// so the wall-clock pieces (heartbeats, leases) carry audited
	// allows instead of exempting the package.
	"internal/cluster",
}

// bannedTimeFuncs are the wall-clock entry points of package time.
// Simulation code measures time in cycles; components that genuinely
// need wall time (progress logging, run-duration telemetry) take an
// injected clock or carry an audited //ampvet:allow.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"After":     true,
	"AfterFunc": true,
}

// nondeterministicImports are packages whose global state defeats
// seeded reproduction. internal/rng is the sanctioned source of
// randomness: explicit seed, SplitMix64, bit-stable across runs.
var nondeterministicImports = map[string]string{
	"math/rand":    "use the seeded internal/rng source instead of global math/rand",
	"math/rand/v2": "use the seeded internal/rng source instead of global math/rand/v2",
	"crypto/rand":  "crypto/rand is nondeterministic by design; simulation code must draw from internal/rng",
}

// DeterminismAnalyzer enforces bit-reproducibility in simulation-core
// packages: no wall clocks, no unseeded randomness, no map iteration
// (Go randomizes range order, so any map walk that feeds results or
// swap decisions breaks identical-seed reproduction).
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "flag wall-clock reads, global math/rand and map iteration in simulation-core packages; " +
		"runs must be pure functions of configuration and seed",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !inSimCore(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := importPath(imp)
			if why, ok := nondeterministicImports[path]; ok {
				pass.Reportf(imp.Pos(), "import of %s breaks seeded reproducibility: %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if fn, ok := pass.Info.Uses[n.Sel].(*types.Func); ok {
					if fn.Pkg() != nil && fn.Pkg().Path() == "time" && bannedTimeFuncs[fn.Name()] {
						pass.Reportf(n.Pos(),
							"time.%s reads the wall clock; simulation code must count cycles or take an injected clock",
							fn.Name())
					}
				}
			case *ast.RangeStmt:
				if n.Key == nil && n.Value == nil {
					return true // body can't observe the iteration order
				}
				if tv, ok := pass.Info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(),
							"map iteration order is randomized and can leak into results or swap decisions; "+
								"iterate over sorted keys or annotate an audited //ampvet:allow determinism")
					}
				}
			}
			return true
		})
	}
	return nil
}

func inSimCore(pkg *types.Package) bool {
	for _, s := range simCoreSuffixes {
		if pkgPathIs(pkg, s) {
			return true
		}
	}
	return false
}

func importPath(imp *ast.ImportSpec) string {
	p := imp.Path.Value
	if len(p) >= 2 {
		p = p[1 : len(p)-1]
	}
	return p
}
