package analysis

import (
	"go/ast"
	"go/types"
)

// HotPathAllocAnalyzer checks functions annotated //ampvet:hotpath —
// the per-cycle step/observer/telemetry paths whose "0 allocs/op with
// telemetry off" contract BENCH_telemetry.json records — for
// allocation-forcing constructs:
//
//   - calls into package fmt (Sprintf and friends allocate and box),
//   - boxing a concrete value into an interface (escapes to heap),
//   - closures capturing outer variables (the capture allocates),
//   - append inside a loop (amortized growth, but per-cycle loops
//     must pre-size with make(..., 0, n) outside the loop),
//   - defer inside a loop (each iteration allocates a defer record).
//
// The check is intraprocedural: a hot-path function calling a helper
// that allocates is caught only if the helper is itself annotated.
// Cold sub-paths inside a hot function (wedge handling, run-end
// flushes) carry //ampvet:allow hotpathalloc with the audit reason.
var HotPathAllocAnalyzer = &Analyzer{
	Name: "hotpathalloc",
	Doc: "flag allocation-forcing constructs (fmt calls, interface boxing, capturing closures, " +
		"append/defer in loops) inside functions annotated //ampvet:hotpath",
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotPathBody(pass, fd)
		}
	}
	return nil
}

func checkHotPathBody(pass *Pass, fd *ast.FuncDecl) {
	// loopDepth tracks whether the visited node sits inside a for or
	// range statement of this function (not of a nested closure).
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			walkChildren(n, func(c ast.Node) { walk(c, true) })
			return
		case *ast.RangeStmt:
			walkChildren(n, func(c ast.Node) { walk(c, true) })
			return
		case *ast.DeferStmt:
			if inLoop {
				pass.Reportf(n.Pos(), "defer in a loop allocates a defer record per iteration in hot path %s", fd.Name.Name)
			}
		case *ast.FuncLit:
			if capt := capturedVars(pass, fd, n); len(capt) > 0 {
				pass.Reportf(n.Pos(), "closure captures %s in hot path %s; the capture allocates — hoist the closure or pass state explicitly",
					joinNames(capt), fd.Name.Name)
			}
			// Do not descend: the closure body runs on its own
			// schedule, not per invocation of the hot function.
			return
		case *ast.CallExpr:
			checkHotPathCall(pass, fd, n, inLoop)
		}
		walkChildren(n, func(c ast.Node) { walk(c, inLoop) })
	}
	walk(fd.Body, false)
}

func checkHotPathCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, inLoop bool) {
	// Builtin append in a loop: amortized growth reallocates.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && inLoop {
			pass.Reportf(call.Pos(), "append in a loop may reallocate in hot path %s; pre-size the slice with make(..., 0, n) outside the loop",
				fd.Name.Name)
			return
		}
	}
	// Explicit conversion to an interface type: T(x) where T is an
	// interface boxes x.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.IsInterface(tv.Type) {
			if av, ok := pass.Info.Types[call.Args[0]]; ok &&
				!types.IsInterface(av.Type) && !isNil(av) && !pointerShaped(av.Type) {
				pass.Reportf(call.Pos(), "conversion boxes %s into %s in hot path %s",
					av.Type, tv.Type, fd.Name.Name)
			}
		}
		return
	}
	fn := calleeOf(pass.Info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s allocates (formatting boxes its operands) in hot path %s",
			fn.Name(), fd.Name.Name)
		return
	}
	// Implicit boxing: a concrete argument passed for an interface
	// parameter escapes to the heap.
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		av, ok := pass.Info.Types[arg]
		if !ok || types.IsInterface(av.Type) || isNil(av) || pointerShaped(av.Type) {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into %s in hot path %s",
			av.Type, pt, fd.Name.Name)
	}
}

// callSignature resolves the signature of the called function or
// function value; nil for type conversions and builtins.
func callSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// capturedVars lists variables the closure references that are
// declared in the enclosing function but outside the closure itself.
func capturedVars(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) []string {
	seen := map[string]bool{}
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured iff declared inside the enclosing function but
		// before/outside the literal. Package-level vars aren't
		// captures (no per-call allocation).
		if v.Pos() >= fd.Pos() && v.Pos() <= fd.End() &&
			(v.Pos() < lit.Pos() || v.Pos() > lit.End()) && !seen[v.Name()] {
			seen[v.Name()] = true
			out = append(out, v.Name())
		}
		return true
	})
	return out
}

// pointerShaped reports whether values of t are stored directly in an
// interface's data word — pointers, channels, maps, funcs and unsafe
// pointers do not allocate when converted to an interface.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isNil(tv types.TypeAndValue) bool {
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// walkChildren applies fn to each direct child node of n.
func walkChildren(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}
