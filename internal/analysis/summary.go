package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The summary layer gives the dataflow-aware analyzers (lockcheck,
// ctxcheck, unitcheck) a cross-package view without a real
// interprocedural engine: one cheap pass over every loaded package
// builds a FuncFacts record per function declaration — does it block,
// what does it call, does it take a context, what dimensions do its
// results and parameters carry — and a fixpoint over the call graph
// propagates "blocking" transitively. Interface dispatch is
// approximated soundly-for-this-repo: a call through an interface
// method is considered blocking when any in-universe concrete
// implementation of that interface blocks.
//
// Functions are keyed by a canonical string ("pkg/path.Type.Method" or
// "pkg/path.Func") rather than by *types.Func identity, because the
// loader type-checks dependencies twice (API-only and full) and the
// two views produce distinct objects for the same function.

// FuncFacts summarizes one function declaration.
type FuncFacts struct {
	Key string
	// Blocking records that the function can block: channel ops,
	// selects without default, known-blocking std calls, or a call to
	// another blocking function.
	Blocking bool
	// BlockingWhy is a short human reason for diagnostics.
	BlockingWhy string
	// CtxParam reports a context.Context parameter.
	CtxParam bool
	// ResultDim is the //ampvet:unit-declared result dimension.
	ResultDim *Dim
	// ParamDims maps parameter index -> declared dimension.
	ParamDims map[int]Dim
	// calls lists in-universe callee keys (call-graph edges).
	calls []string
}

// Summaries is the read-only product of BuildSummaries, shared by all
// passes of a run. Safe for concurrent readers.
type Summaries struct {
	funcs map[string]*FuncFacts
	// typeDims maps "pkg/path.Type" -> declared dimension of the named
	// type; fieldDims maps "pkg/path.Type.Field" for struct fields.
	typeDims  map[string]Dim
	fieldDims map[string]Dim
}

// funcKey canonicalizes a function object across type-check views.
func funcKey(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			return f.Pkg().Path() + "." + named.Obj().Name() + "." + f.Name()
		}
		return f.Pkg().Path() + ".?." + f.Name()
	}
	return f.Pkg().Path() + "." + f.Name()
}

// shortKey trims the package path of a key to its last element for
// diagnostics.
func shortKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// stdBlocking lists standard-library calls the suite treats as
// blocking operations, keyed by funcKey. sync.(*Cond).Wait is
// deliberately absent: it atomically releases the mutex it is
// documented to be called with, so holding that lock across it is the
// designed protocol, not a bug.
var stdBlocking = map[string]string{
	"time.Sleep":          "time.Sleep",
	"sync.WaitGroup.Wait": "sync.WaitGroup.Wait",

	"os.File.Read":    "file read",
	"os.File.ReadAt":  "file read",
	"os.File.Write":   "file write",
	"os.File.WriteAt": "file write",
	"os.File.Sync":    "file sync",
	"os.Open":         "file open",
	"os.OpenFile":     "file open",
	"os.Create":       "file create",
	"os.ReadFile":     "file read",
	"os.WriteFile":    "file write",
	"os.Rename":       "file rename",
	"os.Remove":       "file remove",
	"os.RemoveAll":    "file remove",
	"os.MkdirAll":     "mkdir",
	"os.ReadDir":      "directory read",

	"io.Copy":            "io.Copy",
	"io.ReadAll":         "io.ReadAll",
	"bufio.Writer.Flush": "buffered-writer flush",

	"net.Dial":            "net dial",
	"net.Conn.Read":       "net read",
	"net.Conn.Write":      "net write",
	"net.Listener.Accept": "net accept",

	"net/http.Get":                   "HTTP request",
	"net/http.Post":                  "HTTP request",
	"net/http.Client.Do":             "HTTP request",
	"net/http.Server.ListenAndServe": "HTTP serve",
	"net/http.Server.Serve":          "HTTP serve",
	"net/http.Server.Shutdown":       "HTTP shutdown",

	"os/exec.Cmd.Run":            "subprocess run",
	"os/exec.Cmd.Wait":           "subprocess wait",
	"os/exec.Cmd.Output":         "subprocess run",
	"os/exec.Cmd.CombinedOutput": "subprocess run",
}

// BuildSummaries runs the summary pass over every package of a load.
// It must see the whole analysis universe at once: blocking
// propagation and interface-dispatch edges cross package boundaries.
func BuildSummaries(pkgs []*Package) *Summaries {
	s := &Summaries{
		funcs:     map[string]*FuncFacts{},
		typeDims:  map[string]Dim{},
		fieldDims: map[string]Dim{},
	}
	for _, pkg := range pkgs {
		s.collectPackage(pkg)
	}
	s.addInterfaceEdges(pkgs)
	s.propagateBlocking()
	return s
}

// collectPackage records per-function facts and unit tags for one
// package.
func (s *Summaries) collectPackage(pkg *Package) {
	if pkg.Types == nil {
		return
	}
	path := pkg.Types.Path()
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				s.collectFunc(pkg, d)
			case *ast.GenDecl:
				if d.Tok == token.TYPE {
					s.collectTypeDims(path, d)
				}
			}
		}
	}
}

// collectTypeDims indexes //ampvet:unit tags on type declarations and
// struct fields. A tag on the type declaration (doc or trailing
// comment) dimensions every value of the named type; a tag on a field
// (doc or trailing comment) dimensions that field.
func (s *Summaries) collectTypeDims(pkgPath string, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		typeKey := pkgPath + "." + ts.Name.Name
		for _, cg := range []*ast.CommentGroup{d.Doc, ts.Doc, ts.Comment} {
			if dim, ok := unitTagIn(cg); ok {
				s.typeDims[typeKey] = dim
			}
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			continue
		}
		for _, field := range st.Fields.List {
			dim, ok := unitTagIn(field.Doc)
			if !ok {
				dim, ok = unitTagIn(field.Comment)
			}
			if !ok {
				continue
			}
			for _, name := range field.Names {
				s.fieldDims[typeKey+"."+name.Name] = dim
			}
		}
	}
}

// unitTagIn extracts a plain `//ampvet:unit <dim>` tag from a comment
// group (the two-field parameter form is only meaningful in function
// docs and is ignored here).
func unitTagIn(cg *ast.CommentGroup) (Dim, bool) {
	if cg == nil {
		return Dim{}, false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, unitPrefix) {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(text, unitPrefix))
		if len(fields) == 1 {
			if dim, ok := parseDim(fields[0]); ok {
				return dim, true
			}
		}
	}
	return Dim{}, false
}

// collectFunc builds the FuncFacts for one declaration.
func (s *Summaries) collectFunc(pkg *Package, fd *ast.FuncDecl) {
	obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	key := funcKey(obj)
	if key == "" {
		return
	}
	facts := &FuncFacts{Key: key}
	s.funcs[key] = facts

	if sig, ok := obj.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			if isContextType(sig.Params().At(i).Type()) {
				facts.CtxParam = true
			}
		}
	}
	s.collectFuncUnitTags(fd, obj, facts)

	if fd.Body == nil {
		return
	}
	walkBlocking(pkg.Info, fd.Body, func(why string) {
		if !facts.Blocking {
			facts.Blocking, facts.BlockingWhy = true, why
		}
	}, func(calleeKey string) {
		facts.calls = append(facts.calls, calleeKey)
	})
}

// collectFuncUnitTags parses //ampvet:unit lines in a function doc:
// `//ampvet:unit <dim>` declares the (single) result's dimension,
// `//ampvet:unit <param> <dim>` a named parameter's.
func (s *Summaries) collectFuncUnitTags(fd *ast.FuncDecl, obj *types.Func, facts *FuncFacts) {
	if fd.Doc == nil {
		return
	}
	paramIndex := map[string]int{}
	if fd.Type.Params != nil {
		i := 0
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				i++
				continue
			}
			for _, name := range field.Names {
				paramIndex[name.Name] = i
				i++
			}
		}
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, unitPrefix) {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(text, unitPrefix))
		switch len(fields) {
		case 1:
			if dim, ok := parseDim(fields[0]); ok {
				facts.ResultDim = &dim
			}
		case 2:
			dim, ok := parseDim(fields[1])
			if !ok {
				continue
			}
			if idx, ok := paramIndex[fields[0]]; ok {
				if facts.ParamDims == nil {
					facts.ParamDims = map[int]Dim{}
				}
				facts.ParamDims[idx] = dim
			}
		}
	}
}

// walkBlocking walks a function body reporting direct blocking
// operations and call edges. Goroutine bodies are skipped: a `go`
// statement hands the blocking op to another goroutine, so the spawner
// itself does not block (and does not hold its locks there).
func walkBlocking(info *types.Info, body ast.Node, block func(why string), edge func(calleeKey string)) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Record edges from the spawned call (the callee runs, just
			// elsewhere) but none of its blocking ops.
			return false
		case *ast.SendStmt:
			block("channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				block("channel receive")
			}
		case *ast.RangeStmt:
			if t, ok := info.Types[n.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					block("range over channel")
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				block("select without default")
			}
			// Walk only the clause bodies: with a default the comm ops
			// are non-blocking attempts, without one the select itself
			// is already reported.
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					for _, stmt := range cc.Body {
						ast.Inspect(stmt, walk)
					}
				}
			}
			return false
		case *ast.CallExpr:
			if callee := calleeOf(info, n); callee != nil {
				key := funcKey(callee)
				if why, ok := stdBlocking[key]; ok {
					block("call to " + why)
				} else if key != "" {
					edge(key)
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// addInterfaceEdges links every in-universe interface method to every
// in-universe concrete implementation, so blocking propagates through
// dynamic dispatch.
func (s *Summaries) addInterfaceEdges(pkgs []*Package) {
	type namedIface struct {
		named *types.Named
		iface *types.Interface
	}
	var ifaces []namedIface
	var concretes []*types.Named
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				if iface.NumMethods() > 0 {
					ifaces = append(ifaces, namedIface{named, iface})
				}
			} else {
				concretes = append(concretes, named)
			}
		}
	}
	for _, ni := range ifaces {
		ifaceKey := ni.named.Obj().Pkg().Path() + "." + ni.named.Obj().Name()
		for _, c := range concretes {
			if !types.Implements(c, ni.iface) && !types.Implements(types.NewPointer(c), ni.iface) {
				continue
			}
			cKey := c.Obj().Pkg().Path() + "." + c.Obj().Name()
			for i := 0; i < ni.iface.NumMethods(); i++ {
				m := ni.iface.Method(i).Name()
				from := ifaceKey + "." + m
				facts := s.funcs[from]
				if facts == nil {
					facts = &FuncFacts{Key: from}
					s.funcs[from] = facts
				}
				facts.calls = append(facts.calls, cKey+"."+m)
			}
		}
	}
}

// propagateBlocking closes Blocking over the call graph.
func (s *Summaries) propagateBlocking() {
	callers := map[string][]*FuncFacts{}
	for _, f := range s.funcs {
		for _, callee := range f.calls {
			callers[callee] = append(callers[callee], f)
		}
	}
	var work []string
	for key, f := range s.funcs {
		if f.Blocking {
			work = append(work, key)
		}
	}
	for len(work) > 0 {
		key := work[len(work)-1]
		work = work[:len(work)-1]
		blocked := s.funcs[key]
		for _, caller := range callers[key] {
			if caller.Blocking {
				continue
			}
			caller.Blocking = true
			caller.BlockingWhy = "calls " + shortKey(key) + " (" + blocked.BlockingWhy + ")"
			if len(caller.BlockingWhy) > 160 {
				caller.BlockingWhy = caller.BlockingWhy[:157] + "..."
			}
			work = append(work, caller.Key)
		}
	}
}

// BlockingCall reports whether the call blocks (directly or
// transitively) and why. Calls of function values resolve to nothing
// and return false — the layer is deliberately conservative there.
func (s *Summaries) BlockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	callee := calleeOf(info, call)
	if callee == nil {
		return "", false
	}
	key := funcKey(callee)
	if why, ok := stdBlocking[key]; ok {
		return why, true
	}
	if facts, ok := s.funcs[key]; ok && facts.Blocking {
		return shortKey(key) + " blocks: " + facts.BlockingWhy, true
	}
	return "", false
}

// FuncByKey exposes a summary record (nil when unknown).
func (s *Summaries) FuncByKey(key string) *FuncFacts { return s.funcs[key] }

// HasFunc reports whether any function with the key exists — used by
// ctxcheck to detect Context-taking siblings (Run vs RunContext).
func (s *Summaries) HasFunc(key string) bool { _, ok := s.funcs[key]; return ok }

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
