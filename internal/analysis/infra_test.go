package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"ampsched/internal/analysis"
)

// TestParallelLoadAndRunSuite drives the concurrent paths end to end
// on real module packages: List -> LoadTargets fans type-checking out
// across workers, RunSuite fans analysis out, and the skip callback
// serves one package from a fake cache. Run with -race this doubles as
// the loader/suite data-race regression test.
func TestParallelLoadAndRunSuite(t *testing.T) {
	loader := analysis.NewLoader(".")
	listed, err := loader.List(
		"ampsched/internal/rng",
		"ampsched/internal/workload",
		"ampsched/internal/metrics",
		"ampsched/internal/power",
	)
	if err != nil {
		t.Fatal(err)
	}
	roots := map[string]bool{
		"ampsched/internal/rng":      true,
		"ampsched/internal/workload": true,
		"ampsched/internal/metrics":  true,
		"ampsched/internal/power":    true,
	}
	var targets []*analysis.ListedPackage
	for _, p := range listed {
		if roots[p.ImportPath] {
			targets = append(targets, p)
		}
	}
	if len(targets) != 4 {
		t.Fatalf("listed %d root targets, want 4", len(targets))
	}
	pkgs, err := loader.LoadTargets(targets)
	if err != nil {
		t.Fatal(err)
	}
	canned := []analysis.Diagnostic{{
		File: "fake.go", Line: 1, Column: 1,
		Check: "determinism", Message: "served from cache",
	}}
	served := 0
	diags, err := analysis.RunSuite(pkgs, analysis.All(),
		func(pkg *analysis.Package) ([]analysis.Diagnostic, bool) {
			if pkg.Path == "ampsched/internal/rng" {
				served++
				return canned, true
			}
			return nil, false
		})
	if err != nil {
		t.Fatal(err)
	}
	if served != 1 {
		t.Fatalf("skip callback served %d packages, want 1", served)
	}
	fromCache := 0
	for _, d := range diags {
		if d.Message == "served from cache" {
			fromCache++
			if d.Package != "ampsched/internal/rng" {
				t.Errorf("cached diag attributed to %q", d.Package)
			}
		} else {
			t.Errorf("unexpected live finding: %s", d.String())
		}
	}
	if fromCache != 1 {
		t.Fatalf("got %d cached findings back, want 1", fromCache)
	}
}

// fixtureListing writes a tiny two-package universe to dir and returns
// its ListedPackage metadata (dep first, app second).
func fixtureListing(t *testing.T, dir, body string) []*analysis.ListedPackage {
	t.Helper()
	depDir := filepath.Join(dir, "dep")
	appDir := filepath.Join(dir, "app")
	for d, src := range map[string]string{
		depDir: "package dep\n\nfunc Answer() int { return 42 }\n",
		appDir: body,
	} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(d, "f.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return []*analysis.ListedPackage{
		{ImportPath: "example/dep", Dir: depDir, GoFiles: []string{"f.go"}},
		{ImportPath: "example/app", Dir: appDir, GoFiles: []string{"f.go"},
			Imports: []string{"example/dep"}},
	}
}

func TestFindingsCacheRoundTrip(t *testing.T) {
	src := t.TempDir()
	listed := fixtureListing(t, src, "package app\n\nfunc Use() int { return 1 }\n")

	cacheDir := t.TempDir()
	cache, err := analysis.NewFindingsCache(cacheDir, "salt-v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Index(listed); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get("example/app"); ok {
		t.Fatal("cold cache reported a hit")
	}
	want := []analysis.Diagnostic{{File: "f.go", Line: 3, Column: 1, Check: "lockcheck", Message: "planted"}}
	if err := cache.Put("example/app", want); err != nil {
		t.Fatal(err)
	}
	if err := cache.Put("example/dep", nil); err != nil {
		t.Fatal(err)
	}
	got, ok := cache.Get("example/app")
	if !ok || len(got) != 1 || got[0] != want[0] {
		t.Fatalf("Get = %v, %v; want the planted finding", got, ok)
	}
	// Empty verdicts are cached too — that is the warm fast path.
	if d, ok := cache.Get("example/dep"); !ok || len(d) != 0 {
		t.Fatalf("empty verdict not served: %v, %v", d, ok)
	}

	// Editing the DEPENDENCY changes the dependent's key: the summary
	// layer propagates facts across package boundaries, so app's
	// verdict must be recomputed.
	if err := os.WriteFile(filepath.Join(src, "dep", "f.go"),
		[]byte("package dep\n\nfunc Answer() int { return 43 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cache2, err := analysis.NewFindingsCache(cacheDir, "salt-v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := cache2.Index(listed); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache2.Get("example/app"); ok {
		t.Fatal("dependency edit did not invalidate the dependent")
	}

	// A different salt (new ampvet binary, different check set) misses.
	cache3, err := analysis.NewFindingsCache(cacheDir, "salt-v2")
	if err != nil {
		t.Fatal(err)
	}
	// Restore the original dep content so only the salt differs.
	if err := os.WriteFile(filepath.Join(src, "dep", "f.go"),
		[]byte("package dep\n\nfunc Answer() int { return 42 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cache3.Index(listed); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache3.Get("example/app"); ok {
		t.Fatal("salt change did not invalidate the cache")
	}
}

func TestBaselineRoundTripAndFilter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	known := analysis.Diagnostic{File: "a.go", Line: 10, Column: 2, Check: "lockcheck", Message: "old debt"}
	if err := analysis.WriteBaseline(path, []analysis.Diagnostic{known, known}); err != nil {
		t.Fatal(err)
	}
	base, err := analysis.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh := analysis.Diagnostic{File: "b.go", Line: 3, Column: 1, Check: "unitcheck", Message: "new bug"}
	moved := known
	moved.Line = 99 // baseline matching is line-insensitive
	out, suppressed := base.Filter([]analysis.Diagnostic{moved, fresh})
	if suppressed != 1 {
		t.Fatalf("suppressed %d, want 1", suppressed)
	}
	if len(out) != 1 || out[0] != fresh {
		t.Fatalf("Filter kept %v, want only the fresh finding", out)
	}
}
