package analysis_test

import (
	"strings"
	"testing"

	"ampsched/internal/analysis"
	"ampsched/internal/analysis/analysistest"
)

// The four analyzers against their testdata fixtures: each must catch
// every planted violation, honor //ampvet:allow, and stay quiet on the
// clean/out-of-scope packages.

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DeterminismAnalyzer, "determinism/internal/sched")
}

func TestDeterminismServiceScope(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DeterminismAnalyzer, "determinism/internal/jobqueue")
}

func TestDeterminismWALScope(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DeterminismAnalyzer, "determinism/internal/wal")
}

func TestDeterminismFleetScope(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DeterminismAnalyzer, "determinism/internal/cluster")
}

func TestDeterminismOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DeterminismAnalyzer, "determinism/outofscope")
}

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HotPathAllocAnalyzer, "hotpathalloc")
}

func TestDeprecatedAPI(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DeprecatedAPIAnalyzer, "deprecatedapi/app")
}

func TestDeprecatedAPIDefiningPackagesExempt(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DeprecatedAPIAnalyzer, "deprecatedapi/internal/amp")
	analysistest.Run(t, "testdata", analysis.DeprecatedAPIAnalyzer, "deprecatedapi/internal/sched")
	analysistest.Run(t, "testdata", analysis.DeprecatedAPIAnalyzer, "deprecatedapi/internal/manycore")
}

func TestObsErrCheck(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ObsErrCheckAnalyzer, "obserrcheck/app")
}

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LockCheckAnalyzer, "lockcheck")
}

func TestUnitCheck(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.UnitCheckAnalyzer, "unitcheck")
}

func TestCtxCheck(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.CtxCheckAnalyzer, "ctxcheck/app")
}

func TestCtxCheckMainExempt(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.CtxCheckAnalyzer, "ctxcheck/mainpkg")
}

func TestDirectivePlacement(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.CtxCheckAnalyzer, "directives2")
}

// TestMalformedDirectives loads the directives fixture directly: a
// reason-less allow must both be reported and fail to suppress, and an
// unknown check name must be reported.
func TestMalformedDirectives(t *testing.T) {
	loader := analysis.NewLoader(".")
	pkg, err := loader.LoadDir("testdata/src/directives", "directives", nil)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{analysis.DeterminismAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Check+": "+d.Message)
	}
	wantSubstrings := []string{
		"ampvet: ampvet:allow determinism needs a reason",
		"ampvet: ampvet:allow names unknown check nosuchcheck",
		"ampvet: unknown directive ampvet:ignore",
		"ampvet: ampvet:unit names unknown dimension furlongs",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, g := range got {
			if strings.Contains(g, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing finding containing %q in %q", want, got)
		}
	}
	// The package is named "directives", not simulation core, so the
	// time.Now calls themselves are out of determinism's scope — only
	// the malformed directives are findings.
	if len(diags) != len(wantSubstrings) {
		t.Errorf("got %d findings, want exactly the %d malformed directives: %v",
			len(diags), len(wantSubstrings), got)
	}
}

// TestByName checks the driver's -checks resolution.
func TestByName(t *testing.T) {
	suite, err := analysis.ByName("determinism, obserrcheck")
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 2 || suite[0].Name != "determinism" || suite[1].Name != "obserrcheck" {
		t.Fatalf("ByName resolved %v", suite)
	}
	if _, err := analysis.ByName("nope"); err == nil {
		t.Fatal("ByName accepted an unknown check")
	}
}

// TestLoaderLoadsModulePackage exercises the go list loader on a real
// module package with a std dependency.
func TestLoaderLoadsModulePackage(t *testing.T) {
	loader := analysis.NewLoader(".")
	pkgs, err := loader.Load("ampsched/internal/rng")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Types == nil || pkgs[0].Types.Name() != "rng" {
		t.Fatalf("loaded %+v", pkgs)
	}
	if len(pkgs[0].TypeErrors) != 0 {
		t.Fatalf("type errors: %v", pkgs[0].TypeErrors)
	}
}
