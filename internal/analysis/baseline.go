package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline support for gradual adoption: a committed findings file
// makes known, not-yet-triaged findings non-fatal while anything new
// still fails the build. Entries match on (file, check, message) and
// deliberately ignore line numbers, so unrelated edits shifting a
// finding up or down don't resurrect it; editing the flagged code
// enough to change the message does.
//
// ampsched itself ships with no baseline — every finding is fixed or
// carries an //ampvet:allow — but the mechanism is what lets a new
// analyzer land before a large triage finishes.

// baselineEntry is one accepted finding.
type baselineEntry struct {
	File    string `json:"file"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// Baseline is a loaded findings-baseline file.
type Baseline struct {
	entries map[baselineEntry]bool
}

// LoadBaseline reads a baseline file written by WriteBaseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []baselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	b := &Baseline{entries: map[baselineEntry]bool{}}
	for _, e := range entries {
		b.entries[e] = true
	}
	return b, nil
}

// WriteBaseline records the findings as the new accepted set.
func WriteBaseline(path string, diags []Diagnostic) error {
	seen := map[baselineEntry]bool{}
	var entries []baselineEntry
	for _, d := range diags {
		e := baselineEntry{File: d.File, Check: d.Check, Message: d.Message}
		if !seen[e] {
			seen[e] = true
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	if entries == nil {
		entries = []baselineEntry{}
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits diags into new findings (returned) and baselined ones
// (counted).
func (b *Baseline) Filter(diags []Diagnostic) (fresh []Diagnostic, suppressed int) {
	if b == nil {
		return diags, 0
	}
	for _, d := range diags {
		if b.entries[baselineEntry{File: d.File, Check: d.Check, Message: d.Message}] {
			suppressed++
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh, suppressed
}
