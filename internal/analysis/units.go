package analysis

import (
	"sort"
	"strings"
)

// Dimensional analysis for unitcheck. A Dim is an exponent vector over
// the simulator's base dimensions — cycles (cyc), instructions (ins),
// nanojoules (nj) and seconds (s) — so derived quantities compose by
// ordinary exponent arithmetic: watts = nj·s⁻¹, IPC = ins·cyc⁻¹,
// IPC/Watt = ins·s·cyc⁻¹·nj⁻¹. Scale factors (the 1e-9 between nJ and
// J, the 1e9 between GHz and Hz) are invisible to dimensional
// analysis; unitcheck checks shape, not magnitude.
//
// The vocabulary deliberately stops at the paper's quantities. The
// point is catching a cycle count where an instruction count belongs,
// or an energy where a power belongs — not a general units library.

// Dim is a dimension: exponents of the base dimensions. The zero Dim
// is dimensionless.
type Dim struct {
	Cyc, Ins, NJ, S int
}

// namedDims maps //ampvet:unit spellings to dimension vectors.
var namedDims = map[string]Dim{
	"cycles":            {Cyc: 1},
	"instructions":      {Ins: 1},
	"nanojoules":        {NJ: 1},
	"seconds":           {S: 1},
	"watts":             {NJ: 1, S: -1},
	"ipc":               {Ins: 1, Cyc: -1},
	"ipc_per_watt":      {Ins: 1, S: 1, Cyc: -1, NJ: -1},
	"cycles_per_second": {Cyc: 1, S: -1},
	"dimensionless":     {},
}

// parseDim resolves a dimension name from a directive.
func parseDim(name string) (Dim, bool) {
	d, ok := namedDims[name]
	return d, ok
}

// dimNames lists the vocabulary for error messages, sorted.
func dimNames() string {
	names := make([]string, 0, len(namedDims))
	for n := range namedDims {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// mul returns the dimension of a product.
func (d Dim) mul(o Dim) Dim {
	return Dim{d.Cyc + o.Cyc, d.Ins + o.Ins, d.NJ + o.NJ, d.S + o.S}
}

// div returns the dimension of a quotient.
func (d Dim) div(o Dim) Dim {
	return Dim{d.Cyc - o.Cyc, d.Ins - o.Ins, d.NJ - o.NJ, d.S - o.S}
}

// dimensionless reports whether d is the empty vector.
func (d Dim) dimensionless() bool { return d == Dim{} }

// String renders the dimension for diagnostics: the canonical name
// when one exists, the raw exponent product otherwise.
func (d Dim) String() string {
	for name, nd := range namedDims {
		if nd == d && name != "dimensionless" {
			return name
		}
	}
	if d.dimensionless() {
		return "dimensionless"
	}
	var parts []string
	add := func(base string, exp int) {
		switch {
		case exp == 1:
			parts = append(parts, base)
		case exp != 0:
			parts = append(parts, base+"^"+itoa(exp))
		}
	}
	add("cyc", d.Cyc)
	add("ins", d.Ins)
	add("nj", d.NJ)
	add("s", d.S)
	return strings.Join(parts, "·")
}

// itoa is strconv.Itoa for small signed ints without the import.
func itoa(n int) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}
