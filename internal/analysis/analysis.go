// Package analysis is ampsched's static-analysis suite: a small,
// dependency-free reimplementation of the golang.org/x/tools
// go/analysis model (Analyzer, Pass, Diagnostic) plus the four
// project-specific analyzers run by `make lint` via cmd/ampvet.
//
// The analyzers turn the simulator's two load-bearing invariants —
// bit-reproducible runs under a seed, and an allocation-free per-cycle
// hot path — from comments and one benchmark into compile-time checks:
//
//   - determinism:  no wall clocks, no global math/rand, no map
//     iteration in simulation-core packages; randomness must flow
//     through internal/rng and time through an injected clock.
//   - hotpathalloc: functions annotated //ampvet:hotpath must avoid
//     allocation-forcing constructs (fmt calls, interface boxing,
//     capturing closures, append in loops, defer in loops).
//   - deprecatedapi: the pre-options instrumentation surface
//     (amp.Config.SwapInjector, sched ObserverInjectable.SetObserver)
//     must not gain new callers during its deprecation window.
//   - obserrcheck:  errors from amp.NewSystem / Run / RunContext, the
//     experiments runner entry points and telemetry/trace sink
//     Close/Flush must not be silently discarded.
//
// Audited exceptions are annotated in source:
//
//	//ampvet:allow <check> <reason>
//
// on the flagged line, the line above it, or in the doc comment of the
// enclosing function. The reason is mandatory: an allow without one is
// itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check, mirroring the shape of
// golang.org/x/tools/go/analysis.Analyzer so the suite can migrate to
// the upstream framework wholesale if the dependency ever lands.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass is one analyzer applied to one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	dirs  *directiveIndex
	diags []Diagnostic
}

// A Diagnostic is one finding, positioned for editors.
type Diagnostic struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Column  int            `json:"column"`
	Check   string         `json:"check"`
	Message string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Column, d.Check, d.Message)
}

// Reportf records a finding unless an //ampvet:allow directive for
// this check covers pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.dirs.allowed(p.Analyzer.Name, position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Column:  position.Column,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		HotPathAllocAnalyzer,
		DeprecatedAPIAnalyzer,
		ObsErrCheckAnalyzer,
	}
}

// ByName resolves a comma-separated check list against the suite.
func ByName(names string) ([]*Analyzer, error) {
	index := map[string]*Analyzer{}
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (have %s)", n, checkNames())
		}
		out = append(out, a)
	}
	return out, nil
}

func checkNames() string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// RunAnalyzers applies the analyzers to the package and returns the
// findings sorted by position, including any malformed-directive
// findings from the package's files.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs := indexDirectives(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	diags = append(diags, dirs.malformed...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			dirs:     dirs,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
		}
		diags = append(diags, pass.diags...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Check < b.Check
	})
	return diags, nil
}

// ---------------------------------------------------------------------
// Shared type-query helpers.

// pkgPathIs reports whether the object lives in a package whose import
// path is path or ends in "/"+path — suffix matching keeps the
// analyzers honest under analysistest fixtures, which mirror the real
// package layout under synthetic module paths.
func pkgPathIs(pkg *types.Package, path string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == path || strings.HasSuffix(p, "/"+path)
}

// calleeOf resolves the called function object, looking through
// parentheses and selectors. Returns nil for calls of function values
// and type conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// enclosingFunc returns the innermost function declaration containing
// pos, or nil.
func enclosingFunc(files []*ast.File, pos token.Pos) *ast.FuncDecl {
	for _, f := range files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}
