// Package analysis is ampsched's static-analysis suite: a small,
// dependency-free reimplementation of the golang.org/x/tools
// go/analysis model (Analyzer, Pass, Diagnostic) plus the seven
// project-specific analyzers run by `make lint` via cmd/ampvet.
//
// The syntactic four turn the simulator's load-bearing invariants —
// bit-reproducible runs under a seed, and an allocation-free per-cycle
// hot path — from comments and one benchmark into compile-time checks:
//
//   - determinism:  no wall clocks, no global math/rand, no map
//     iteration in simulation-core packages; randomness must flow
//     through internal/rng and time through an injected clock.
//   - hotpathalloc: functions annotated //ampvet:hotpath must avoid
//     allocation-forcing constructs (fmt calls, interface boxing,
//     capturing closures, append in loops, defer in loops).
//   - deprecatedapi: the pre-options instrumentation surface
//     (amp.Config.SwapInjector, sched ObserverInjectable.SetObserver)
//     must not gain new callers during its deprecation window.
//   - obserrcheck:  errors from amp.NewSystem / Run / RunContext, the
//     experiments runner entry points and telemetry/trace sink
//     Close/Flush must not be silently discarded.
//
// The dataflow-aware three share a run-wide function-summary/
// call-graph layer (summary.go) built once over every loaded package:
//
//   - lockcheck: no mutex held across a blocking operation (channel
//     ops, selects, file/net I/O, transitively-blocking calls), no
//     inconsistent lock acquisition order, no lock copied by value.
//   - unitcheck: dimensional analysis over //ampvet:unit tags for the
//     paper's quantities (cycles, instructions, nanojoules, watts,
//     IPC, IPC/Watt): cross-unit arithmetic and mismatched
//     assignments/returns/arguments are findings.
//   - ctxcheck:  context.Background/TODO banned outside package main;
//     a ctx-receiving function must thread its context to every
//     callee that accepts one.
//
// Audited exceptions are annotated in source:
//
//	//ampvet:allow <check> <reason>
//
// on the flagged line, the line above it, or in the doc comment of the
// enclosing function. The reason is mandatory: an allow without one is
// itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// An Analyzer describes one static check, mirroring the shape of
// golang.org/x/tools/go/analysis.Analyzer so the suite can migrate to
// the upstream framework wholesale if the dependency ever lands.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass is one analyzer applied to one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Sum is the run-wide summary layer (function facts, blocking
	// classification, unit tags). Read-only during analysis.
	Sum *Summaries

	dirs  *directiveIndex
	diags []Diagnostic
}

// A Diagnostic is one finding, positioned for editors.
type Diagnostic struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Column  int            `json:"column"`
	Check   string         `json:"check"`
	Message string         `json:"message"`
	// Package is the import path of the package the finding is in
	// (set by RunSuite; empty in single-package runs).
	Package string `json:"pkg,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Column, d.Check, d.Message)
}

// Reportf records a finding unless an //ampvet:allow directive for
// this check covers pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.dirs.allowed(p.Analyzer.Name, position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Column:  position.Column,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		HotPathAllocAnalyzer,
		DeprecatedAPIAnalyzer,
		ObsErrCheckAnalyzer,
		LockCheckAnalyzer,
		UnitCheckAnalyzer,
		CtxCheckAnalyzer,
	}
}

// ByName resolves a comma-separated check list against the suite.
func ByName(names string) ([]*Analyzer, error) {
	index := map[string]*Analyzer{}
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (have %s)", n, checkNames())
		}
		out = append(out, a)
	}
	return out, nil
}

func checkNames() string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// RunAnalyzers applies the analyzers to one package in isolation,
// building a package-local summary layer. The analysistest harness
// and single-fixture tests use this; the driver uses RunSuite, whose
// summaries span the whole load.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runOne(pkg, analyzers, BuildSummaries([]*Package{pkg}))
}

// runOne applies the analyzers to one package under a given summary
// layer.
func runOne(pkg *Package, analyzers []*Analyzer, sum *Summaries) ([]Diagnostic, error) {
	dirs := indexDirectives(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	diags = append(diags, dirs.malformed...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Sum:      sum,
			dirs:     dirs,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
		}
		diags = append(diags, pass.diags...)
	}
	sortDiags(diags)
	return diags, nil
}

// RunSuite applies the analyzers to every package of a load under one
// shared summary layer, fanning packages out across GOMAXPROCS.
// skip(pkg) lets the driver serve a package from its findings cache
// instead of analyzing it; results come back through the per-package
// callback (called from multiple goroutines) and the merged, sorted
// slice.
func RunSuite(pkgs []*Package, analyzers []*Analyzer, skip func(*Package) ([]Diagnostic, bool)) ([]Diagnostic, error) {
	sum := BuildSummaries(pkgs)
	var (
		mu    sync.Mutex
		diags []Diagnostic
		first error
	)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, pkg := range pkgs {
		if skip != nil {
			if cached, ok := skip(pkg); ok {
				stamped := make([]Diagnostic, len(cached))
				copy(stamped, cached)
				for i := range stamped {
					stamped[i].Package = pkg.Path
				}
				mu.Lock()
				diags = append(diags, stamped...)
				mu.Unlock()
				continue
			}
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(pkg *Package) {
			defer wg.Done()
			defer func() { <-sem }()
			got, err := runOne(pkg, analyzers, sum)
			for i := range got {
				got[i].Package = pkg.Path
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil && first == nil {
				first = err
			}
			diags = append(diags, got...)
		}(pkg)
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	sortDiags(diags)
	return diags, nil
}

// sortDiags orders findings by position for stable output.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Check < b.Check
	})
}

// ---------------------------------------------------------------------
// Shared type-query helpers.

// pkgPathIs reports whether the object lives in a package whose import
// path is path or ends in "/"+path — suffix matching keeps the
// analyzers honest under analysistest fixtures, which mirror the real
// package layout under synthetic module paths.
func pkgPathIs(pkg *types.Package, path string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == path || strings.HasSuffix(p, "/"+path)
}

// calleeOf resolves the called function object, looking through
// parentheses and selectors. Returns nil for calls of function values
// and type conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// enclosingFunc returns the innermost function declaration containing
// pos, or nil.
func enclosingFunc(files []*ast.File, pos token.Pos) *ast.FuncDecl {
	for _, f := range files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}
