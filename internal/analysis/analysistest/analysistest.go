// Package analysistest runs an analyzer over a fixture package under
// testdata/src and checks its findings against // want comments, in
// the style of golang.org/x/tools/go/analysis/analysistest:
//
//	t := time.Now() // want `time\.Now reads the wall clock`
//
// Each string after want is a regular expression that must match one
// finding reported on that line; every finding must be claimed by a
// want and every want must be claimed by a finding. Fixture packages
// may import sibling fixture packages by path rooted at testdata/src
// (so a fixture tree can mirror the real internal/... layout), and
// real module or standard-library packages as usual.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"ampsched/internal/analysis"
)

// wantRe extracts the backquoted or quoted expectations from a want
// comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run loads testdata/src/<pkgpath>, applies the analyzer, and reports
// every mismatch between findings and // want comments as a test
// error.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgpath))
	loader := analysis.NewLoader(".")
	fixtures := map[string]*types.Package{}

	var resolve func(path string) (*types.Package, error)
	resolve = func(path string) (*types.Package, error) {
		if pkg, ok := fixtures[path]; ok {
			return pkg, nil
		}
		fdir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		if st, err := os.Stat(fdir); err != nil || !st.IsDir() {
			return nil, nil // not a fixture; fall back to the module/std view
		}
		pkg, err := loader.LoadDir(fdir, path, resolve)
		if err != nil {
			return nil, fmt.Errorf("loading fixture dependency %s: %v", path, err)
		}
		fixtures[path] = pkg.Types
		return pkg.Types, nil
	}

	pkg, err := loader.LoadDir(dir, pkgpath, resolve)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type error: %v", pkgpath, terr)
	}

	diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
	}

	wants := collectWants(t, pkg.Fset, dir)
	for _, d := range diags {
		if !claimWant(wants, d) {
			t.Errorf("%s: unexpected finding: [%s] %s", posLabel(d), d.Check, d.Message)
		}
	}
	for _, w := range wants {
		if !w.claimed {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re.String())
		}
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	claimed bool
}

// collectWants parses every fixture file's comments for // want.
func collectWants(t *testing.T, fset *token.FileSet, dir string) []*want {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, m := range matches {
		if strings.HasSuffix(m, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, m, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimSpace(c.Text), "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				specs := wantRe.FindAllStringSubmatch(text[len("want "):], -1)
				if len(specs) == 0 {
					t.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, text)
					continue
				}
				for _, spec := range specs {
					expr := spec[1]
					if expr == "" {
						expr = spec[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, expr, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// claimWant marks the first unclaimed matching expectation.
func claimWant(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.claimed && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
			w.claimed = true
			return true
		}
	}
	return false
}

func posLabel(d analysis.Diagnostic) string {
	return fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Column)
}
