package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// UnitCheckAnalyzer is dimensional analysis for the paper's
// quantities. Sources of dimension facts, all declared with
// //ampvet:unit (see units.go for the vocabulary):
//
//   - a tagged named type dimensions every value of that type;
//   - a tagged struct field dimensions every read/write of the field;
//   - `//ampvet:unit <dim>` in a function doc dimensions its result,
//     `//ampvet:unit <param> <dim>` a parameter.
//
// Dimensions propagate through conversions, unary +/-, * and /
// (exponent arithmetic), and local variables via a linear
// walk-in-source-order inference. The analyzer flags:
//
//   - addition, subtraction or comparison of two expressions with
//     different known dimensions (cycles + instructions);
//   - assigning, returning or passing a value whose known dimension
//     contradicts the destination's declared one (an energy where a
//     power belongs);
//   - a non-zero unit-less literal passed to a dimensioned parameter
//     or returned from a dimensioned function (magic constants must be
//     named or tagged at the source).
//
// Numeric literals are scale factors (1e-9 between nJ and J), so they
// are dimensionless in * and / and adopt the other operand's dimension
// in + and -. Anything the checker cannot resolve is unknown and
// silent: the analyzer only speaks when two *known* dimensions
// disagree.
var UnitCheckAnalyzer = &Analyzer{
	Name: "unitcheck",
	Doc: "dimensional analysis over //ampvet:unit tags: flag cross-unit arithmetic and " +
		"mismatched assignments/returns/arguments (cycles, instructions, nanojoules, watts, ipc, ipc_per_watt)",
	Run: runUnitCheck,
}

func runUnitCheck(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			u := &unitChecker{pass: pass, vars: map[*types.Var]Dim{}}
			u.bindParams(fd)
			u.walkFunc(fd)
		}
	}
	return nil
}

// unitChecker carries one function's inference state.
type unitChecker struct {
	pass *Pass
	// vars holds known dimensions of parameters and locals.
	vars map[*types.Var]Dim
	// facts is the enclosing function's summary (result dim).
	facts *FuncFacts
}

// bindParams seeds vars with the function's tagged parameters.
func (u *unitChecker) bindParams(fd *ast.FuncDecl) {
	obj, _ := u.pass.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	u.facts = u.pass.Sum.FuncByKey(funcKey(obj))
	if u.facts == nil || u.facts.ParamDims == nil {
		return
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil {
		return
	}
	for idx, dim := range u.facts.ParamDims {
		if idx < sig.Params().Len() {
			u.vars[sig.Params().At(idx)] = dim
		}
	}
}

// walkFunc checks the body in source order so local inference sees
// definitions before uses.
func (u *unitChecker) walkFunc(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			u.checkAssign(n)
		case *ast.ReturnStmt:
			u.checkReturn(n)
		case *ast.CallExpr:
			u.checkCallArgs(n)
		case *ast.BinaryExpr:
			u.checkBinary(n)
		case *ast.CompositeLit:
			u.checkCompositeLit(n)
		}
		return true
	})
}

// checkAssign handles =, :=, and the arithmetic assignment operators.
func (u *unitChecker) checkAssign(a *ast.AssignStmt) {
	if len(a.Lhs) != len(a.Rhs) {
		return // multi-value call; nothing to infer
	}
	for i := range a.Lhs {
		lhs, rhs := a.Lhs[i], a.Rhs[i]
		rdim, rok := u.dimOf(rhs)
		switch a.Tok {
		case token.DEFINE:
			if v, ok := u.pass.Info.Defs[identOf(lhs)].(*types.Var); ok && v != nil {
				if rok && !isNumericLiteral(rhs) {
					u.vars[v] = rdim
				}
			}
		case token.ASSIGN:
			ldim, lok := u.lhsDim(lhs)
			if lok && rok && ldim != rdim && !isNumericLiteral(rhs) {
				u.pass.Reportf(a.Pos(), "assigning %s value to %s destination %s",
					rdim, ldim, exprString(lhs))
			}
			// Track re-assignments of locals whose dim was inferred.
			if v, ok := u.pass.Info.Uses[identOf(lhs)].(*types.Var); ok && v != nil {
				if _, tracked := u.vars[v]; tracked && rok && !isNumericLiteral(rhs) {
					u.vars[v] = rdim
				}
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			ldim, lok := u.lhsDim(lhs)
			if lok && rok && ldim != rdim && !isNumericLiteral(rhs) {
				u.pass.Reportf(a.Pos(), "%s %s %s: operands have different dimensions",
					ldim, a.Tok, rdim)
			}
		case token.MUL_ASSIGN, token.QUO_ASSIGN:
			// x *= k changes x's dimension unless k is a pure scalar;
			// drop the inference rather than guess.
			if v, ok := u.pass.Info.Uses[identOf(lhs)].(*types.Var); ok && v != nil {
				if !isNumericLiteral(rhs) {
					delete(u.vars, v)
				}
			}
		}
	}
}

// checkReturn compares return expressions against the declared result
// dimension.
func (u *unitChecker) checkReturn(r *ast.ReturnStmt) {
	if u.facts == nil || u.facts.ResultDim == nil || len(r.Results) != 1 {
		return
	}
	want := *u.facts.ResultDim
	e := r.Results[0]
	if isNumericLiteral(e) {
		if !want.dimensionless() && !isZeroLiteral(e) {
			u.pass.Reportf(e.Pos(), "unit-less literal returned from function declared %s", want)
		}
		return
	}
	if got, ok := u.dimOf(e); ok && got != want {
		u.pass.Reportf(e.Pos(), "returning %s value from function declared %s", got, want)
	}
}

// checkCallArgs compares arguments against the callee's tagged
// parameter dimensions.
func (u *unitChecker) checkCallArgs(call *ast.CallExpr) {
	callee := calleeOf(u.pass.Info, call)
	if callee == nil {
		return
	}
	facts := u.pass.Sum.FuncByKey(funcKey(callee))
	if facts == nil || facts.ParamDims == nil {
		return
	}
	for idx, want := range facts.ParamDims {
		if idx >= len(call.Args) {
			continue
		}
		arg := call.Args[idx]
		if isNumericLiteral(arg) {
			if !want.dimensionless() && !isZeroLiteral(arg) {
				u.pass.Reportf(arg.Pos(), "unit-less literal passed to %s parameter %d of %s",
					want, idx, callee.Name())
			}
			continue
		}
		if got, ok := u.dimOf(arg); ok && got != want {
			u.pass.Reportf(arg.Pos(), "passing %s value to %s parameter %d of %s",
				got, want, idx, callee.Name())
		}
	}
}

// checkBinary flags +, -, and comparisons whose operands carry
// different known dimensions. * and / are composition, not mixing, so
// they are always legal.
func (u *unitChecker) checkBinary(b *ast.BinaryExpr) {
	switch b.Op {
	case token.ADD, token.SUB, token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return
	}
	if isNumericLiteral(b.X) || isNumericLiteral(b.Y) {
		return // literals adopt the other operand's dimension
	}
	xd, xok := u.dimOf(b.X)
	yd, yok := u.dimOf(b.Y)
	if xok && yok && xd != yd {
		u.pass.Reportf(b.Pos(), "%s %s %s: operands have different dimensions", xd, b.Op, yd)
	}
}

// checkCompositeLit compares field values of a struct literal against
// tagged field dimensions.
func (u *unitChecker) checkCompositeLit(lit *ast.CompositeLit) {
	t := u.pass.Info.Types[lit].Type
	if t == nil {
		return
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	if named.Obj().Pkg() == nil {
		return
	}
	typeKey := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		want, tagged := u.pass.Sum.fieldDims[typeKey+"."+key.Name]
		if !tagged || isNumericLiteral(kv.Value) {
			continue // literal field values are config constants, not flows
		}
		if got, ok := u.dimOf(kv.Value); ok && got != want {
			u.pass.Reportf(kv.Value.Pos(), "field %s.%s declared %s assigned %s value",
				named.Obj().Name(), key.Name, want, got)
		}
	}
}

// lhsDim resolves the declared dimension of an assignment destination.
func (u *unitChecker) lhsDim(e ast.Expr) (Dim, bool) {
	return u.dimOf(e)
}

// dimOf resolves the dimension of an expression; ok=false means
// unknown (and silent).
func (u *unitChecker) dimOf(e ast.Expr) (Dim, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := u.objOf(e).(*types.Var); ok {
			if dim, ok := u.vars[v]; ok {
				return dim, true
			}
		}
	case *ast.SelectorExpr:
		if dim, ok := u.fieldDim(e); ok {
			return dim, true
		}
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return u.dimOf(e.X)
		}
		return Dim{}, false
	case *ast.BinaryExpr:
		return u.binaryDim(e)
	case *ast.CallExpr:
		return u.callDim(e)
	}
	// Fall back to the expression's static type: values of a tagged
	// named type carry its dimension anywhere they flow.
	if tv, ok := u.pass.Info.Types[e]; ok {
		if dim, ok := u.typeDim(tv.Type); ok {
			return dim, true
		}
	}
	return Dim{}, false
}

// binaryDim composes dimensions through arithmetic.
func (u *unitChecker) binaryDim(b *ast.BinaryExpr) (Dim, bool) {
	switch b.Op {
	case token.MUL, token.QUO:
		xd, xok := u.dimOf(b.X)
		yd, yok := u.dimOf(b.Y)
		// Literals are pure scalars: dimensionless on either side.
		if !xok && isNumericLiteral(b.X) {
			xd, xok = Dim{}, true
		}
		if !yok && isNumericLiteral(b.Y) {
			yd, yok = Dim{}, true
		}
		if !xok || !yok {
			return Dim{}, false
		}
		if b.Op == token.MUL {
			return xd.mul(yd), true
		}
		return xd.div(yd), true
	case token.ADD, token.SUB:
		xd, xok := u.dimOf(b.X)
		if xok && !isNumericLiteral(b.X) {
			return xd, true
		}
		yd, yok := u.dimOf(b.Y)
		if yok && !isNumericLiteral(b.Y) {
			return yd, true
		}
		return Dim{}, false
	}
	return Dim{}, false
}

// callDim resolves conversions and tagged-result calls.
func (u *unitChecker) callDim(call *ast.CallExpr) (Dim, bool) {
	// Numeric conversion float64(x) / uint64(x): transparent.
	if len(call.Args) == 1 {
		if tv, ok := u.pass.Info.Types[call.Fun]; ok && tv.IsType() {
			if dim, ok := u.typeDim(tv.Type); ok {
				return dim, true
			}
			if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsNumeric != 0 {
				return u.dimOf(call.Args[0])
			}
			return Dim{}, false
		}
	}
	callee := calleeOf(u.pass.Info, call)
	if callee == nil {
		return Dim{}, false
	}
	if facts := u.pass.Sum.FuncByKey(funcKey(callee)); facts != nil && facts.ResultDim != nil {
		return *facts.ResultDim, true
	}
	return Dim{}, false
}

// fieldDim resolves a tagged struct field access.
func (u *unitChecker) fieldDim(sel *ast.SelectorExpr) (Dim, bool) {
	obj, ok := u.pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return Dim{}, false
	}
	rt := u.pass.Info.Types[sel.X].Type
	if rt == nil {
		return Dim{}, false
	}
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return Dim{}, false
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + obj.Name()
	dim, ok := u.pass.Sum.fieldDims[key]
	return dim, ok
}

// typeDim resolves a tagged named type.
func (u *unitChecker) typeDim(t types.Type) (Dim, bool) {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return Dim{}, false
	}
	dim, ok := u.pass.Sum.typeDims[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
	return dim, ok
}

// objOf looks an identifier up in Uses then Defs.
func (u *unitChecker) objOf(id *ast.Ident) types.Object {
	if obj := u.pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return u.pass.Info.Defs[id]
}

// identOf unwraps an assignment destination to its identifier (nil
// for selector/index destinations).
func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// isNumericLiteral reports whether e is a numeric literal, possibly
// signed or parenthesized.
func isNumericLiteral(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return e.Kind == token.INT || e.Kind == token.FLOAT
	case *ast.UnaryExpr:
		return (e.Op == token.ADD || e.Op == token.SUB) && isNumericLiteral(e.X)
	}
	return false
}

// isZeroLiteral reports whether the literal is numerically zero (zero
// initialization is always dimension-correct).
func isZeroLiteral(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok {
		return false
	}
	v, err := strconv.ParseFloat(strings.TrimPrefix(lit.Value, "0x"), 64)
	return err == nil && v == 0
}

// exprString renders a short destination description.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}
