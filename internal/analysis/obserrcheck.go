package analysis

import (
	"go/ast"
	"go/types"
)

// ObsErrCheckAnalyzer flags silently discarded errors from the APIs
// whose failure modes the fault-injection and degradation layers were
// built to surface: a dropped error here turns a wedged run or a
// truncated telemetry file into silent data corruption.
//
// Checked call sites (by defining package and name):
//
//	amp.NewSystem, (*amp.System).Run / RunContext,
//	(*experiments.Runner).RunPair* / Sweep / SweepContext,
//	telemetry and trace Close / Flush (sinks buffer; only Close
//	reports the final write),
//	the service layer: jobqueue Submit/TrySubmit/Drain, server
//	Submit/Drain and cache Save/Load, and http.Server.Shutdown
//	(a dropped error loses jobs, strands a drain, or forgets
//	computed sweeps),
//	the durability layer: wal Log Append/Sync/Close, server
//	Recover, and experiments DirCheckpointer Save/Load (a dropped
//	error here silently voids the crash-safety contract).
//
// A call is flagged when its error result is discarded: the call used
// as a bare statement, deferred, launched with go, or assigned to the
// blank identifier.
var ObsErrCheckAnalyzer = &Analyzer{
	Name: "obserrcheck",
	Doc: "flag discarded errors from amp.NewSystem/Run/RunContext, the experiments runner " +
		"entry points, and telemetry/trace sink Close/Flush",
	Run: runObsErrCheck,
}

// checkedAPI describes one must-check function or method.
type checkedAPI struct {
	pkgSuffix string
	recv      string // named receiver type; "" for package-level, "*" for any receiver
	name      string
}

var checkedAPIs = []checkedAPI{
	{"internal/amp", "", "NewSystem"},
	{"internal/amp", "System", "Run"},
	{"internal/amp", "System", "RunContext"},
	{"internal/experiments", "Runner", "RunPair"},
	{"internal/experiments", "Runner", "RunPairContext"},
	{"internal/experiments", "Runner", "RunPairOverhead"},
	{"internal/experiments", "Runner", "Sweep"},
	{"internal/experiments", "Runner", "SweepContext"},
	{"internal/telemetry", "*", "Close"},
	{"internal/telemetry", "*", "Flush"},
	{"internal/trace", "*", "Close"},
	{"internal/trace", "*", "Flush"},
	// Service layer: a dropped error here loses jobs (submission), strands
	// a drain (Shutdown/Drain), or silently forgets computed sweeps
	// (cache persistence).
	{"net/http", "Server", "Shutdown"},
	{"internal/jobqueue", "Queue", "Submit"},
	{"internal/jobqueue", "Queue", "TrySubmit"},
	{"internal/jobqueue", "Queue", "Drain"},
	{"internal/server", "Server", "Submit"},
	{"internal/server", "Server", "Drain"},
	{"internal/server", "Cache", "Save"},
	{"internal/server", "Cache", "Load"},
	// Durability layer: a dropped error here breaks the crash-safety
	// contract — an unjournaled ack, an unsynced frame, or a silently
	// failed checkpoint all lose acknowledged work on the next crash.
	{"internal/server", "Server", "Recover"},
	{"internal/wal", "Log", "Append"},
	{"internal/wal", "Log", "Sync"},
	{"internal/wal", "Log", "Close"},
	{"internal/experiments", "DirCheckpointer", "Save"},
	{"internal/experiments", "DirCheckpointer", "Load"},
	// Fleet layer: a dropped error here boots a node that silently
	// never joined the ring (New/Start) or leaks heartbeat and steal
	// goroutines past shutdown (Close).
	{"internal/cluster", "", "New"},
	{"internal/cluster", "Node", "Start"},
	{"internal/cluster", "Node", "Close"},
}

func runObsErrCheck(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if label := matchCheckedCall(pass, call); label != "" {
						pass.Reportf(call.Pos(), "error from %s discarded; a failed call here is a degraded or corrupt result", label)
					}
				}
				return false
			case *ast.DeferStmt:
				if label := matchCheckedCall(pass, n.Call); label != "" {
					pass.Reportf(n.Pos(), "deferred %s discards its error; check it in a deferred closure or at the end of the function", label)
				}
				return false
			case *ast.GoStmt:
				if label := matchCheckedCall(pass, n.Call); label != "" {
					pass.Reportf(n.Pos(), "go %s discards its error", label)
				}
				return false
			case *ast.AssignStmt:
				checkBlankError(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkBlankError flags `x, _ := Run(...)` — the error position
// assigned to the blank identifier.
func checkBlankError(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	label := matchCheckedCall(pass, call)
	if label == "" {
		return
	}
	errIdx := errorResultIndex(pass, call)
	if errIdx < 0 || errIdx >= len(as.Lhs) {
		return
	}
	if id, ok := as.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(id.Pos(), "error from %s assigned to blank identifier; handle it or annotate an audited //ampvet:allow obserrcheck",
			label)
	}
}

// matchCheckedCall returns a display label ("amp.NewSystem",
// "System.Run") when the call resolves to a table entry, "" otherwise.
// Only calls that actually return an error are matched.
func matchCheckedCall(pass *Pass, call *ast.CallExpr) string {
	fn := calleeOf(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || errorIndexOf(sig) < 0 {
		return ""
	}
	for i := range checkedAPIs {
		api := &checkedAPIs[i]
		if fn.Name() != api.name || !pkgPathIs(fn.Pkg(), api.pkgSuffix) {
			continue
		}
		switch api.recv {
		case "":
			if sig.Recv() != nil {
				continue
			}
			return fn.Pkg().Name() + "." + fn.Name()
		case "*":
			if sig.Recv() == nil {
				continue
			}
		default:
			if recvTypeName(sig) != api.recv {
				continue
			}
		}
		if r := recvTypeName(sig); r != "" {
			return r + "." + fn.Name()
		}
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return ""
}

// errorResultIndex returns the position of the error result in the
// call's result tuple, or -1.
func errorResultIndex(pass *Pass, call *ast.CallExpr) int {
	fn := calleeOf(pass.Info, call)
	if fn == nil {
		return -1
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	return errorIndexOf(sig)
}

func errorIndexOf(sig *types.Signature) int {
	res := sig.Results()
	for i := res.Len() - 1; i >= 0; i-- {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return i
		}
	}
	return -1
}

func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return "" // anonymous interface receiver
}
