package cluster

import (
	"fmt"
	"testing"

	"ampsched/internal/server"
	"ampsched/internal/telemetry"
)

// TestRingDeterministicPlacement pins the coordination-free routing
// contract: every node that agrees on membership derives the
// identical ring, regardless of the order it learned the members in.
func TestRingDeterministicPlacement(t *testing.T) {
	members := []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080"}
	perms := [][]string{
		{members[0], members[1], members[2]},
		{members[2], members[0], members[1]},
		{members[1], members[2], members[0], members[0]}, // dup collapses
	}
	rings := make([]*Ring, len(perms))
	for i, p := range perms {
		rings[i] = NewRing(p, 0)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("job-key-%d", i)
		want := rings[0].Owner(key)
		for j := 1; j < len(rings); j++ {
			if got := rings[j].Owner(key); got != want {
				t.Fatalf("ring %d owner(%q) = %q, ring 0 says %q", j, key, got, want)
			}
		}
	}
}

// TestRingDistribution requires virtual nodes to spread ownership:
// with 64 vnodes per member, no member of a 3-node ring should own a
// wildly disproportionate share of uniformly random keys.
func TestRingDistribution(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1"}
	r := NewRing(members, 0)
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, m := range members {
		share := float64(counts[m]) / n
		if share < 0.15 || share > 0.55 {
			t.Errorf("member %s owns %.0f%% of keys; vnode spread is broken (counts %v)", m, 100*share, counts)
		}
	}
}

// TestRingMinimalRemap pins the consistent-hashing property: removing
// one member only remaps the keys that member owned; every other
// key's owner is unchanged.
func TestRingMinimalRemap(t *testing.T) {
	full := NewRing([]string{"a:1", "b:1", "c:1"}, 0)
	reduced := NewRing([]string{"a:1", "b:1"}, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before != "c:1" && after != before {
			t.Fatalf("key %q moved %q -> %q though its owner survived", key, before, after)
		}
	}
}

// TestRingOwners checks the lookup/replica order: distinct members,
// owner first, capped at the member count.
func TestRingOwners(t *testing.T) {
	r := NewRing([]string{"a:1", "b:1", "c:1"}, 0)
	owners := r.Owners("some-key", 5)
	if len(owners) != 3 {
		t.Fatalf("Owners = %v, want all 3 distinct members", owners)
	}
	if owners[0] != r.Owner("some-key") {
		t.Fatalf("Owners[0] = %q, Owner = %q", owners[0], r.Owner("some-key"))
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate member %q in %v", o, owners)
		}
		seen[o] = true
	}
	if got := NewRing(nil, 0).Owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
}

// TestJobRouteKeyCanonical pins that routing keys survive client
// formatting: whitespace, field order and the single-vs-array
// submission forms must all produce the canonical key, so every node
// routes one logical job to one owner.
func TestJobRouteKeyCanonical(t *testing.T) {
	canonical := JobKey([]server.JobSpec{{Pairs: 2, Seed: 7}})
	variants := []string{
		`{"pairs":2,"seed":7}`,
		`{ "seed": 7, "pairs": 2 }`,
		"\n\t{\"pairs\": 2,\n \"seed\": 7}",
		`[{"pairs":2,"seed":7}]`,
	}
	for _, v := range variants {
		key, ok := jobRouteKey([]byte(v))
		if !ok {
			t.Fatalf("jobRouteKey(%q) not ok", v)
		}
		if key != canonical {
			t.Errorf("jobRouteKey(%q) = %s, want %s", v, key, canonical)
		}
	}
	other, ok := jobRouteKey([]byte(`{"pairs":2,"seed":8}`))
	if !ok || other == canonical {
		t.Fatalf("distinct spec produced the same routing key")
	}
	if _, ok := jobRouteKey([]byte(`{not json`)); ok {
		t.Fatal("undecodable body produced a routing key")
	}
	if _, ok := jobRouteKey(nil); ok {
		t.Fatal("empty body produced a routing key")
	}
}

// TestMembershipLifecycle drives the alive -> suspect -> dead ->
// resurrected state machine and checks its ring and callback effects.
func TestMembershipLifecycle(t *testing.T) {
	tel := telemetry.New()
	m := newMembership("a:1", []string{"b:1", "c:1"}, 8, 2, 4, tel)
	var died []string
	m.onDeath = func(p string) { died = append(died, p) }

	if got := m.livePeers(); len(got) != 2 {
		t.Fatalf("livePeers = %v, want b and c", got)
	}

	// Two misses: suspect. Still a routing target (stays on the ring).
	m.observe("b:1", false)
	m.observe("b:1", false)
	if got := m.state("b:1"); got != peerSuspect {
		t.Fatalf("after 2 misses state = %v, want suspect", got)
	}
	if got := m.livePeers(); len(got) != 2 {
		t.Fatalf("suspect peer fell off livePeers: %v", got)
	}
	ownsSomething := func(peer string) bool {
		for i := 0; i < 200; i++ {
			if m.owner(fmt.Sprintf("key-%d", i)) == peer {
				return true
			}
		}
		return false
	}
	if !ownsSomething("b:1") {
		t.Fatal("suspect peer lost its ring share")
	}

	// Two more misses: dead. Off the ring, claims voided via onDeath.
	m.observe("b:1", false)
	m.observe("b:1", false)
	if got := m.state("b:1"); got != peerDead {
		t.Fatalf("after 4 misses state = %v, want dead", got)
	}
	if ownsSomething("b:1") {
		t.Fatal("dead peer still owns keys")
	}
	if len(died) != 1 || died[0] != "b:1" {
		t.Fatalf("onDeath fired %v, want [b:1]", died)
	}
	if got := tel.Counter("cluster.peer_deaths").Value(); got != 1 {
		t.Fatalf("cluster.peer_deaths = %d, want 1", got)
	}
	if got := tel.Counter("cluster.ring_rebuilds").Value(); got < 1 {
		t.Fatalf("cluster.ring_rebuilds = %d, want >= 1", got)
	}
	// Dead peers are still probed (allPeers) so a restart can rejoin.
	found := false
	for _, p := range m.allPeers() {
		if p == "b:1" {
			found = true
		}
	}
	if !found {
		t.Fatal("dead peer dropped from the probe set; it could never rejoin")
	}

	// One answered probe: alive again, back on the ring.
	m.observe("b:1", true)
	if got := m.state("b:1"); got != peerAlive {
		t.Fatalf("after answered probe state = %v, want alive", got)
	}
	if !ownsSomething("b:1") {
		t.Fatal("resurrected peer got no ring share back")
	}

	// A second death must re-count misses from zero.
	m.observe("b:1", false)
	if got := m.state("b:1"); got != peerAlive {
		t.Fatalf("one miss after resurrection = %v, want still alive", got)
	}
}
