package cluster

import (
	"context"
	"sort"
	"sync"

	"ampsched/internal/telemetry"
)

// peerState is a peer's liveness classification.
type peerState int

const (
	// peerAlive: heartbeats answered; full routing target.
	peerAlive peerState = iota
	// peerSuspect: missed probes, below the death threshold. Still on
	// the ring — a transient blip should not reshuffle ownership — but
	// forwards to it may fail over to local compute.
	peerSuspect
	// peerDead: consistently unreachable. Off the ring; its keys
	// re-route to successors until a heartbeat answers again.
	peerDead
)

// membership tracks static fleet membership plus dynamic liveness,
// and owns the live ring rebuilt on every alive<->dead transition.
// Static membership means the peer set never grows or shrinks; nodes
// only move between alive, suspect and dead.
type membership struct {
	self         string
	peers        []string // sorted, includes self
	vnodes       int
	suspectAfter int // consecutive missed probes → suspect
	deadAfter    int // consecutive missed probes → dead

	mu     sync.Mutex
	misses map[string]int
	states map[string]peerState
	ring   *Ring

	rebuilds *telemetry.Counter
	suspects *telemetry.Counter
	deaths   *telemetry.Counter

	// onDeath runs (outside the lock) when a peer transitions to dead,
	// so the node layer can void that stealer's outstanding claims.
	onDeath func(peer string)
}

func newMembership(self string, peers []string, vnodes, suspectAfter, deadAfter int, tel *telemetry.Telemetry) *membership {
	m := &membership{
		self:         self,
		vnodes:       vnodes,
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		misses:       make(map[string]int),
		states:       make(map[string]peerState),
		rebuilds:     tel.Counter("cluster.ring_rebuilds"),
		suspects:     tel.Counter("cluster.peer_suspects"),
		deaths:       tel.Counter("cluster.peer_deaths"),
	}
	seen := map[string]bool{self: true}
	m.peers = []string{self}
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		m.peers = append(m.peers, p)
		m.states[p] = peerAlive
	}
	sort.Strings(m.peers)
	m.ring = NewRing(m.peers, m.vnodes)
	return m
}

// owner returns the live-ring owner of key ("" on an empty ring,
// which cannot happen in practice: self is always a member).
func (m *membership) owner(key string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring.Owner(key)
}

// lookupOrder returns every non-dead peer except self in ownership
// order for key: the key's ring successors first, then any remaining
// live peers — the sequence a remote result lookup should try.
func (m *membership) lookupOrder(key string) []string {
	m.mu.Lock()
	ring := m.ring
	live := m.livePeersLocked()
	m.mu.Unlock()
	ranked := ring.Owners(key, len(m.peers))
	out := make([]string, 0, len(live))
	seen := make(map[string]bool, len(live))
	isLive := make(map[string]bool, len(live))
	for _, p := range live {
		isLive[p] = true
	}
	for _, p := range ranked {
		if p != m.self && isLive[p] && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, p := range live {
		if !seen[p] {
			out = append(out, p)
		}
	}
	return out
}

// livePeers returns every non-dead peer except self, sorted.
func (m *membership) livePeers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.livePeersLocked()
}

func (m *membership) livePeersLocked() []string {
	out := make([]string, 0, len(m.peers))
	for _, p := range m.peers {
		if p == m.self {
			continue
		}
		if m.states[p] != peerDead {
			out = append(out, p)
		}
	}
	return out
}

// allPeers returns every peer except self, sorted — heartbeats probe
// dead peers too, so a restarted node rejoins the ring.
func (m *membership) allPeers() []string {
	out := make([]string, 0, len(m.peers))
	for _, p := range m.peers {
		if p != m.self {
			out = append(out, p)
		}
	}
	return out
}

// state returns the peer's current classification.
func (m *membership) state(peer string) peerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.states[peer]
}

// observe records one probe (or forward) outcome for peer and applies
// the alive → suspect → dead state machine, rebuilding the live ring
// when ring membership changes.
func (m *membership) observe(peer string, ok bool) {
	if peer == m.self {
		return
	}
	var died bool
	m.mu.Lock()
	prev, known := m.states[peer]
	if !known {
		m.mu.Unlock()
		return
	}
	if ok {
		m.misses[peer] = 0
		if prev != peerAlive {
			m.states[peer] = peerAlive
			if prev == peerDead {
				m.rebuildLocked()
			}
		}
		m.mu.Unlock()
		return
	}
	m.misses[peer]++
	switch {
	case m.misses[peer] >= m.deadAfter && prev != peerDead:
		m.states[peer] = peerDead
		m.deaths.Inc()
		m.rebuildLocked()
		died = true
	case m.misses[peer] >= m.suspectAfter && prev == peerAlive:
		m.states[peer] = peerSuspect
		m.suspects.Inc()
	}
	m.mu.Unlock()
	if died && m.onDeath != nil {
		m.onDeath(peer)
	}
}

// rebuildLocked recomputes the live ring from non-dead members.
// Callers hold m.mu.
func (m *membership) rebuildLocked() {
	members := make([]string, 0, len(m.peers))
	for _, p := range m.peers {
		if p == m.self || m.states[p] != peerDead {
			members = append(members, p)
		}
	}
	m.ring = NewRing(members, m.vnodes)
	m.rebuilds.Inc()
}

// heartbeat runs one probe round: every peer (dead ones too, so they
// can rejoin) is probed and the outcome fed to the state machine.
func (m *membership) heartbeat(ctx context.Context, probe func(ctx context.Context, peer string) error) {
	for _, p := range m.allPeers() {
		if ctx.Err() != nil {
			return
		}
		m.observe(p, probe(ctx, p) == nil)
	}
}
