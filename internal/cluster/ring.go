// Package cluster turns ampserve into a fleet: a consistent-hash
// ring routes every canonical job key to an owner node, a small
// node-to-node HTTP protocol (/v1/peer/...) forwards submissions to
// the owner and shares cached results, idle nodes steal pending pair
// jobs from overloaded peers, and a heartbeat layer marks unreachable
// peers suspect/dead and re-routes around them.
//
// The design leans entirely on the server's content-addressed cache:
// a pair record's bytes are a pure function of its KeySpec, so it
// does not matter which node simulates a pair — owner, forwarder
// fallback, or stealer — the bytes are identical and any copy is
// authoritative. Cross-node singleflight follows from routing: both
// receivers of one job key forward to the same owner, whose cache
// singleflight collapses the concurrent computations into one
// simulation.
//
// Telemetry (under "cluster."): forwards, forward_fallbacks,
// peer_jobs, remote_hits, remote_misses, replicas, steals,
// steals_granted, steal_returns, redispatches, ring_rebuilds,
// peer_suspects, peer_deaths.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// defaultVNodes is the virtual-node count per peer. 64 points per
// node keeps the expected ownership imbalance of a 3-node fleet
// within a few percent while the ring stays tiny (192 points).
const defaultVNodes = 64

// ringPoint is one virtual node's position on the hash circle.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring. Placement is a pure
// function of the member list and vnode count — every node that
// agrees on membership derives the identical ring, so routing needs
// no coordination.
type Ring struct {
	points []ringPoint
	nodes  []string
}

// hash64 is the ring's placement and lookup hash: the first 8 bytes
// of SHA-256, the same family the server's content addresses use, so
// placement is seeded/deterministic across processes and platforms
// (no runtime map seeds, no process-local hash state).
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds the ring for the given members. Duplicates are
// collapsed and order is irrelevant — callers on different nodes pass
// their peer lists in any order and still agree. An empty member list
// yields a ring whose lookups return "".
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for _, n := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(n + "#" + strconv.Itoa(v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between members is vanishingly rare but
		// must still break deterministically on every node.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the sorted member list.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Owner returns the member owning key: the first virtual node at or
// clockwise after the key's point. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.successor(hash64(key))].node
}

// Owners returns up to n distinct members in ownership order for key:
// the owner first, then the successors a lookup should try next. This
// is also the replica placement order for result rendezvous.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	idx := r.successor(hash64(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(idx+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}

// successor finds the index of the first point at or after h,
// wrapping past the top of the circle.
func (r *Ring) successor(h uint64) int {
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if idx == len(r.points) {
		idx = 0
	}
	return idx
}
