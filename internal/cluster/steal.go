// Work stealing. An idle node (empty queue) polls its peers' health,
// picks the one with the costliest pending backlog, and claims jobs
// from the back of that queue via POST /v1/peer/claims. A claimed job
// stays in the owner's queue — the claim is a shield, not a move: the
// stealer re-runs the spec through its own server (so the existing
// retry/wedge classification applies on the stealer too) and PUTs
// each pair record back under its content address, fulfilling the
// claim. When the owner's own worker reaches a claimed key first it
// waits for the returned bytes, bounded by the claim TTL; past the
// TTL (a wedged or dead stealer) it speculatively re-dispatches the
// pair locally — first writer wins, and byte-identity means it cannot
// matter which. A stealer that fails outright releases its claims so
// the owner re-dispatches immediately instead of burning the TTL.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"ampsched/internal/server"
)

// claim is one pair key shielded by an outstanding steal (owner
// side). done closes on fulfillment (data set) or void (data nil).
type claim struct {
	stealer string
	expires time.Time
	data    []byte
	done    chan struct{}
}

// claimRequest is the POST /v1/peer/claims body.
type claimRequest struct {
	Stealer string `json:"stealer"`
	Max     int    `json:"max"`
}

// claimGrant is one stolen job: the spec to re-run and the content
// addresses its records must return under.
type claimGrant struct {
	JobID string         `json:"job_id"`
	Spec  server.JobSpec `json:"spec"`
	Keys  []string       `json:"keys"`
	Cost  float64        `json:"cost"`
}

// claimResponse is the POST /v1/peer/claims reply.
type claimResponse struct {
	Grants []claimGrant `json:"grants"`
}

// releaseRequest is the POST /v1/peer/claims/release body: a stealer
// giving up on granted keys.
type releaseRequest struct {
	JobID string   `json:"job_id,omitempty"`
	Keys  []string `json:"keys"`
}

// handlePeerClaims grants pending pair jobs to a stealer. Grants come
// from the back of the priority queue (least-urgent first), only when
// there is a real backlog (≥2 pending — the owner always keeps work
// it will reach next), and never twice for one job while a prior
// claim is live.
func (n *Node) handlePeerClaims(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		apiError(w, http.StatusBadRequest, fmt.Errorf("decoding claim request: %w", err))
		return
	}
	if req.Max <= 0 {
		req.Max = 1
	}
	var grants []claimGrant
	st := n.srv.Queue().Stats()
	if st.Pending >= 2 && !n.srv.Draining() {
		budget := req.Max
		if st.Pending-1 < budget {
			budget = st.Pending - 1
		}
		cands := n.srv.StealableJobs(budget * 2)
		now := time.Now() //ampvet:allow determinism claim leases are inherently wall-clock
		n.mu.Lock()
		for _, c := range cands {
			if len(grants) >= budget {
				break
			}
			if exp, taken := n.jobClaims[c.ID]; taken && now.Before(exp) {
				continue
			}
			exp := now.Add(n.cfg.ClaimTTL)
			n.jobClaims[c.ID] = exp
			for _, k := range c.Keys {
				if _, busy := n.claims[k]; !busy {
					n.claims[k] = &claim{stealer: req.Stealer, expires: exp, done: make(chan struct{})}
				}
			}
			grants = append(grants, claimGrant{JobID: c.ID, Spec: c.Spec, Keys: c.Keys, Cost: c.Cost})
		}
		n.mu.Unlock()
	}
	n.stealsGranted.Add(uint64(len(grants)))
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(claimResponse{Grants: grants})
}

// handlePeerRelease voids the named claims: the stealer could not
// deliver, so waiters re-dispatch locally right away.
func (n *Node) handlePeerRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		apiError(w, http.StatusBadRequest, fmt.Errorf("decoding release request: %w", err))
		return
	}
	n.mu.Lock()
	voided := make([]*claim, 0, len(req.Keys))
	for _, k := range req.Keys {
		if c, ok := n.claims[k]; ok {
			delete(n.claims, k)
			voided = append(voided, c)
		}
	}
	if req.JobID != "" {
		delete(n.jobClaims, req.JobID)
	}
	n.mu.Unlock()
	for _, c := range voided {
		close(c.done)
	}
	w.WriteHeader(http.StatusNoContent)
}

// fulfillClaim delivers returned bytes to the claim's waiters.
func (n *Node) fulfillClaim(key string, data []byte) {
	n.mu.Lock()
	c, ok := n.claims[key]
	if ok {
		delete(n.claims, key)
	}
	n.mu.Unlock()
	if !ok {
		return
	}
	c.data = data // write happens-before close(done)
	close(c.done)
	n.stealReturns.Inc()
}

// waitClaim blocks a local compute on an outstanding claim for key:
// if a stealer is working this pair, its returned bytes beat a
// duplicate simulation. The wait is bounded by the claim's TTL — past
// it the claim is dropped and the caller re-dispatches locally
// (counted on cluster.redispatches). A voided claim re-dispatches
// immediately.
func (n *Node) waitClaim(ctx context.Context, key string) ([]byte, bool) {
	n.mu.Lock()
	c, ok := n.claims[key]
	n.mu.Unlock()
	if !ok {
		return nil, false
	}
	t := time.NewTimer(time.Until(c.expires)) //ampvet:allow determinism claim leases are inherently wall-clock
	defer t.Stop()
	select {
	case <-c.done:
		if c.data != nil {
			return c.data, true
		}
		n.redispatches.Inc() // voided: stealer gave up
		return nil, false
	case <-t.C:
		n.mu.Lock()
		if n.claims[key] == c {
			delete(n.claims, key)
		}
		n.mu.Unlock()
		n.redispatches.Inc()
		return nil, false
	case <-ctx.Done():
		return nil, false
	}
}

// voidClaimsFrom wakes every waiter on a dead stealer's claims — a
// peer the heartbeat declared dead will not return its stolen work,
// so local re-dispatch starts now, not at the TTL.
func (n *Node) voidClaimsFrom(peer string) {
	n.mu.Lock()
	var voided []*claim
	for k, c := range n.claims { //ampvet:allow determinism claim-void fan-out order is unobservable
		if c.stealer == peer {
			delete(n.claims, k)
			voided = append(voided, c)
		}
	}
	n.mu.Unlock()
	for _, c := range voided {
		close(c.done)
	}
}

// voidAllClaims wakes every waiter (Close).
func (n *Node) voidAllClaims() {
	n.mu.Lock()
	var voided []*claim
	for k, c := range n.claims { //ampvet:allow determinism claim-void fan-out order is unobservable
		delete(n.claims, k)
		voided = append(voided, c)
	}
	n.mu.Unlock()
	for _, c := range voided {
		close(c.done)
	}
}

// stealLoop polls while this node's queue is empty: pick the live
// peer with the costliest pending backlog, claim up to StealMax jobs,
// and run them here. Stolen jobs execute synchronously in the loop —
// a node busy computing stolen work does not pile up further claims.
func (n *Node) stealLoop(ctx context.Context) {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.StealInterval) //ampvet:allow determinism steal polling is inherently wall-clock
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ctx.Done():
			return
		case <-t.C:
			if n.srv.Queue().Stats().Pending > 0 || n.srv.Draining() {
				continue
			}
			victim := n.pickVictim(ctx)
			if victim == "" {
				continue
			}
			for _, g := range n.requestClaims(ctx, victim) {
				n.steals.Inc()
				n.runStolen(ctx, victim, g)
			}
		}
	}
}

// pickVictim probes live peers' health and returns the one with the
// largest pending backlog cost above the steal bar ("" = none).
func (n *Node) pickVictim(ctx context.Context) string {
	peers := n.mem.livePeers()
	sort.Strings(peers)
	var victim string
	var best float64
	for _, p := range peers {
		h, err := n.peerHealth(ctx, p)
		if err != nil || h.State != "ready" || h.Pending < 2 {
			continue
		}
		if h.PendingCost > best && h.PendingCost >= n.cfg.StealMinCost {
			best = h.PendingCost
			victim = p
		}
	}
	return victim
}

// peerHealth fetches one peer's health census.
func (n *Node) peerHealth(ctx context.Context, peer string) (PeerHealth, error) {
	rctx, cancel := context.WithTimeout(ctx, n.cfg.RemoteTimeout)
	defer cancel()
	var h PeerHealth
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, peerURL(peer, "/v1/peer/health"), nil)
	if err != nil {
		return h, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return h, fmt.Errorf("cluster: peer %s health: %s", peer, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, err
	}
	return h, nil
}

// requestClaims asks victim for up to StealMax jobs.
func (n *Node) requestClaims(ctx context.Context, victim string) []claimGrant {
	body, err := json.Marshal(claimRequest{Stealer: n.cfg.Self, Max: n.cfg.StealMax})
	if err != nil {
		return nil
	}
	rctx, cancel := context.WithTimeout(ctx, n.cfg.RemoteTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, peerURL(victim, "/v1/peer/claims"), bytes.NewReader(body))
	if err != nil {
		return nil
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		n.mem.observe(victim, false)
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	var cr claimResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return nil
	}
	return cr.Grants
}

// runStolen executes one claimed job through this node's own server —
// queue, admission, retry/wedge classification and cache all apply —
// and returns each pair record to the victim under its content
// address. Any failure to produce or deliver results releases the
// claims so the victim re-dispatches without waiting out the TTL.
func (n *Node) runStolen(ctx context.Context, victim string, g claimGrant) {
	id, err := n.srv.SubmitSpec(g.Spec)
	if err != nil {
		n.releaseClaims(ctx, victim, g)
		return
	}
	st, err := n.srv.WaitJob(ctx, id)
	if err != nil || st.State != "done" {
		n.releaseClaims(ctx, victim, g)
		return
	}
	returned := 0
	for _, r := range st.Results {
		if r.Failed || r.Key == "" {
			continue
		}
		data, ok := n.srv.Cache().Peek(r.Key)
		if !ok {
			continue
		}
		rctx, cancel := context.WithTimeout(ctx, n.cfg.RemoteTimeout)
		err := n.putPeerResult(rctx, victim, r.Key, data)
		cancel()
		if err == nil {
			returned++
		}
	}
	if returned < len(g.Keys) {
		n.releaseClaims(ctx, victim, g)
	}
}

// releaseClaims tells the victim to void this grant's claims.
func (n *Node) releaseClaims(ctx context.Context, victim string, g claimGrant) {
	body, err := json.Marshal(releaseRequest{JobID: g.JobID, Keys: g.Keys})
	if err != nil {
		return
	}
	rctx, cancel := context.WithTimeout(ctx, n.cfg.RemoteTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, peerURL(victim, "/v1/peer/claims/release"), bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
