package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"ampsched/internal/experiments"
	"ampsched/internal/jobqueue"
	"ampsched/internal/server"
	"ampsched/internal/telemetry"
)

// testOptions mirror the server suite's: tiny detailed profiling
// pass, interval-engine pairs, fast enough for loopback fleets.
func testOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.InstrLimit = 40_000
	o.ContextSwitch = 10_000
	o.ProfileInstrLimit = 30_000
	o.Fidelity = "interval"
	return o
}

// testNode is one in-process fleet member: a real Server wrapped in a
// real Node, served over a real loopback listener — the node-to-node
// protocol is HTTP, so the tests speak it for real.
type testNode struct {
	addr string
	base string
	srv  *server.Server
	node *Node
	tel  *telemetry.Telemetry
}

// startFleet boots n nodes that all know each other. Work stealing is
// disabled by default (StealInterval < 0) so routing tests are
// deterministic; the steal test turns it back on.
func startFleet(t testing.TB, n int, mutateSrv func(int, *server.Config), mutateCl func(int, *Config)) []*testNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	fleet := make([]*testNode, n)
	for i := range fleet {
		tel := telemetry.New()
		scfg := server.Config{
			BaseOptions: testOptions(),
			Queue:       jobqueue.Config{Workers: 4, Capacity: 16},
			Cache:       server.CacheConfig{ByteBudget: 1 << 20},
			Telemetry:   tel,
			JobIDSpace:  addrs[i],
		}
		if mutateSrv != nil {
			mutateSrv(i, &scfg)
		}
		srv, err := server.New(scfg)
		if err != nil {
			t.Fatal(err)
		}
		ccfg := Config{
			Self:          addrs[i],
			Peers:         addrs,
			Heartbeat:     100 * time.Millisecond,
			StealInterval: -1,
			Telemetry:     tel,
		}
		if mutateCl != nil {
			mutateCl(i, &ccfg)
		}
		node, err := New(srv, ccfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		if err := node.Start(ctx); err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: node.Handler()}
		ln := listeners[i]
		go hs.Serve(ln)
		tn := &testNode{addr: addrs[i], base: "http://" + addrs[i], srv: srv, node: node, tel: tel}
		fleet[i] = tn
		t.Cleanup(func() {
			hs.Close()
			cancel()
			if err := node.Close(); err != nil {
				t.Errorf("closing node %s: %v", tn.addr, err)
			}
			if err := srv.Close(); err != nil {
				t.Errorf("closing server %s: %v", tn.addr, err)
			}
		})
	}
	return fleet
}

// seedOwnedBy scans seeds until the job routing key lands on the
// wanted node — how tests pin which fleet member owns a submission.
func seedOwnedBy(t *testing.T, fleet []*testNode, owner int, pairs int, from uint64) uint64 {
	t.Helper()
	ring := fleet[0].node.Ring()
	for seed := from; seed < from+10_000; seed++ {
		key := JobKey([]server.JobSpec{{Pairs: pairs, Seed: seed}})
		if ring.Owner(key) == fleet[owner].addr {
			return seed
		}
	}
	t.Fatalf("no seed in [%d,%d) owned by node %d", from, from+10_000, owner)
	return 0
}

func postJob(t *testing.T, base string, spec server.JobSpec) (server.JobStatus, *http.Response) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp
}

func waitDone(t *testing.T, base, id string) server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(180 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st server.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "done":
			return st
		case "failed", "canceled":
			t.Fatalf("job %s: state %q, error %q", id, st.State, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return server.JobStatus{}
}

func fetchResult(t *testing.T, base, key string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/results/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/results/%s = %d", key, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCrossNodeSingleflight is the tentpole's acceptance test: the
// same job submitted concurrently to two different nodes must be
// simulated exactly once. Routing makes it so — both receivers derive
// the same canonical key, forward to the same owner, and the owner's
// cache singleflight collapses the two submissions into one compute.
func TestCrossNodeSingleflight(t *testing.T) {
	fleet := startFleet(t, 2, nil, nil)
	const pairs = 3
	seed := seedOwnedBy(t, fleet, 0, pairs, 1000)
	spec := server.JobSpec{Pairs: pairs, Seed: seed}

	// Same spec, both nodes, at the same time.
	var wg sync.WaitGroup
	ids := make([]string, 2)
	for i := range fleet {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, resp := postJob(t, fleet[i].base, spec)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("node %d: POST = %d, want 202", i, resp.StatusCode)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	sts := make([]server.JobStatus, 2)
	for i := range fleet {
		sts[i] = waitDone(t, fleet[i].base, ids[i])
	}

	// Exactly one simulation per pair, all on the owner. cache_misses
	// counts compute-closure entries — the actual simulations.
	if got := fleet[0].tel.Counter("server.cache_misses").Value(); got != pairs {
		t.Errorf("owner simulated %d pairs, want exactly %d", got, pairs)
	}
	if got := fleet[1].tel.Counter("server.cache_misses").Value(); got != 0 {
		t.Errorf("forwarder simulated %d pairs, want 0", got)
	}
	if got := fleet[1].tel.Counter("cluster.forwards").Value(); got < 1 {
		t.Errorf("cluster.forwards on the non-owner = %d, want >= 1", got)
	}
	if got := fleet[0].tel.Counter("cluster.peer_jobs").Value(); got < 1 {
		t.Errorf("cluster.peer_jobs on the owner = %d, want >= 1", got)
	}

	// Byte identity: every pair key reads the same from both nodes.
	if len(sts[0].Results) != pairs || len(sts[1].Results) != pairs {
		t.Fatalf("results = %d and %d pairs, want %d each", len(sts[0].Results), len(sts[1].Results), pairs)
	}
	for _, r := range sts[0].Results {
		if r.Key == "" {
			t.Fatal("pair result missing its content key")
		}
		a := fetchResult(t, fleet[0].base, r.Key)
		b := fetchResult(t, fleet[1].base, r.Key)
		if !bytes.Equal(a, b) {
			t.Errorf("key %s: bytes differ between nodes", r.Key)
		}
	}
}

// TestForwardPropagatesRetryAfter pins the backpressure contract
// across the forwarding hop: when the owner sheds a forwarded
// submission, the client talking to the forwarder must see the
// owner's status code and Retry-After hint verbatim.
func TestForwardPropagatesRetryAfter(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping fleet backlog test in short mode")
	}
	fleet := startFleet(t, 2,
		func(i int, cfg *server.Config) {
			if i == 0 { // the owner: one worker, one pending slot
				cfg.Queue = jobqueue.Config{Workers: 1, Capacity: 1}
			}
		}, nil)

	// Slow distinct jobs, all owned by node 0, all submitted through
	// node 1: the first runs, the second fills the only pending slot,
	// and some subsequent submission must bounce with 429. Submissions
	// land microseconds apart, so a dozen pairs is plenty of runway.
	const pairs = 12
	var ids []string
	sawRetryAfter := false
	from := uint64(2000)
	for i := 0; i < 10 && !sawRetryAfter; i++ {
		seed := seedOwnedBy(t, fleet, 0, pairs, from)
		from = seed + 1
		st, resp := postJob(t, fleet[1].base, server.JobSpec{Pairs: pairs, Seed: seed})
		switch resp.StatusCode {
		case http.StatusAccepted:
			ids = append(ids, st.ID)
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Fatalf("overload status %d arrived without Retry-After", resp.StatusCode)
			}
			sawRetryAfter = true
		default:
			t.Fatalf("POST = %d, want 202 or 429/503", resp.StatusCode)
		}
	}
	if !sawRetryAfter {
		t.Fatal("owner never shed a forwarded submission (queue too fast?)")
	}
	if got := fleet[1].tel.Counter("cluster.forwards").Value(); got < 2 {
		t.Errorf("cluster.forwards = %d, want >= 2 (accepted and shed submissions both forwarded)", got)
	}
	for _, id := range ids {
		waitDone(t, fleet[1].base, id)
	}
}

// TestWorkStealing backs up one node and requires the idle peer to
// pull pending jobs over the claim protocol and return the records —
// observable in the cluster counters, invisible in the results.
func TestWorkStealing(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping fleet backlog test in short mode")
	}
	fleet := startFleet(t, 2,
		func(i int, cfg *server.Config) {
			if i == 0 { // the victim: a single worker builds a backlog
				cfg.Queue = jobqueue.Config{Workers: 1, Capacity: 16}
			}
		},
		func(i int, cfg *Config) {
			cfg.StealInterval = 20 * time.Millisecond
			// Long claim leases and a lazy heartbeat: under the race
			// detector a stolen job can outlive the default TTL, and a
			// stealer saturated by race-instrumented compute can miss
			// enough probes to be declared dead — either way the victim
			// voids or expires the claims and the returned bytes land
			// with nothing to fulfill, losing exactly the steal_returns
			// signal this test pins. Peers start alive, so a 10 s cadence
			// never completes a death within the test.
			cfg.ClaimTTL = 2 * time.Minute
			cfg.Heartbeat = 10 * time.Second
		})

	// Six slow jobs, every one owned by (and submitted to) node 0, so
	// forwarding never spreads them: only stealing can. Modest pairs —
	// if stealing kicks in late, the victim's single worker must still
	// drain the whole backlog inside the waitDone budget under -race.
	const jobs, pairs = 6, 8
	var ids []string
	from := uint64(3000)
	for i := 0; i < jobs; i++ {
		seed := seedOwnedBy(t, fleet, 0, pairs, from)
		from = seed + 1
		st, resp := postJob(t, fleet[0].base, server.JobSpec{Pairs: pairs, Seed: seed})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %d = %d, want 202", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitDone(t, fleet[0].base, id)
	}

	for _, name := range []string{"cluster.steals", "cluster.steals_granted", "cluster.steal_returns", "cluster.redispatches", "cluster.replicas", "cluster.peer_suspects", "cluster.peer_deaths", "server.cache_misses", "server.jobs_completed"} {
		t.Logf("node0 %s=%d node1 %s=%d", name, fleet[0].tel.Counter(name).Value(), name, fleet[1].tel.Counter(name).Value())
	}
	if got := fleet[1].tel.Counter("cluster.steals").Value(); got < 1 {
		t.Errorf("idle peer ran %d stolen jobs, want >= 1", got)
	}
	if got := fleet[0].tel.Counter("cluster.steals_granted").Value(); got < 1 {
		t.Errorf("victim granted %d claims, want >= 1", got)
	}
	if got := fleet[0].tel.Counter("cluster.steal_returns").Value(); got < 1 {
		t.Errorf("victim saw %d returned claim keys, want >= 1", got)
	}
}

// TestRemoteResultLookup computes a job on its owner and reads a pair
// record through the other node, which must fetch it from the peer
// (counted as a remote hit) rather than 404ing.
func TestRemoteResultLookup(t *testing.T) {
	fleet := startFleet(t, 2, nil, nil)
	const pairs = 2
	seed := seedOwnedBy(t, fleet, 0, pairs, 4000)
	st, resp := postJob(t, fleet[0].base, server.JobSpec{Pairs: pairs, Seed: seed})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d, want 202", resp.StatusCode)
	}
	done := waitDone(t, fleet[0].base, st.ID)
	for _, r := range done.Results {
		a := fetchResult(t, fleet[0].base, r.Key)
		b := fetchResult(t, fleet[1].base, r.Key)
		if !bytes.Equal(a, b) {
			t.Errorf("key %s: bytes differ across nodes", r.Key)
		}
	}
}

// TestJobIDNamespace pins the fleet-mode id format: distinct id
// spaces mint non-colliding ids, the single-node format stays bare.
func TestJobIDNamespace(t *testing.T) {
	mk := func(space string) *server.Server {
		srv, err := server.New(server.Config{
			BaseOptions: testOptions(),
			Queue:       jobqueue.Config{Workers: 1, Capacity: 4},
			Cache:       server.CacheConfig{ByteBudget: 1 << 20},
			JobIDSpace:  space,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return srv
	}
	a := mk("127.0.0.1:1111")
	b := mk("127.0.0.1:2222")
	bare := mk("")
	idA, err := a.SubmitSpec(server.JobSpec{Pairs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := b.SubmitSpec(server.JobSpec{Pairs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	idBare, err := bare.SubmitSpec(server.JobSpec{Pairs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if idA == idB {
		t.Fatalf("two id spaces minted the same id %q", idA)
	}
	if idBare != "1" {
		t.Fatalf("single-node first id = %q, want \"1\"", idBare)
	}
	for _, id := range []string{idA, idB} {
		if len(id) < 10 || id[8] != '-' {
			t.Fatalf("namespaced id %q does not match <8 hex>-<n>", id)
		}
	}
}
