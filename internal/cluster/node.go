package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"ampsched/internal/server"
	"ampsched/internal/telemetry"
)

// Config assembles a Node. Self must be this node's address exactly
// as it appears in every peer's Peers list — ring placement hashes
// the address string, so all nodes must spell each member the same
// way.
type Config struct {
	// Self is this node's advertised host:port.
	Self string
	// Peers is the static fleet membership (host:port each); Self is
	// added if absent. Order is irrelevant.
	Peers []string
	// VNodes is the virtual-node count per peer (0 = 64).
	VNodes int
	// Heartbeat is the liveness probe cadence and per-probe timeout
	// (0 = 500ms).
	Heartbeat time.Duration
	// SuspectAfter / DeadAfter are consecutive missed probes before a
	// peer is marked suspect / dead (0 = 2 / 4).
	SuspectAfter int
	DeadAfter    int
	// ForwardTimeout bounds one submission forward to the owner
	// (0 = 5s); on timeout or transport error the node falls back to
	// computing locally.
	ForwardTimeout time.Duration
	// RemoteTimeout bounds one peer cache lookup or result return
	// (0 = 2s).
	RemoteTimeout time.Duration
	// ClaimTTL is how long a work-stealing claim shields a pair key
	// from local compute before the owner speculatively re-dispatches
	// it (0 = 20s).
	ClaimTTL time.Duration
	// StealInterval is the idle node's steal poll cadence (0 = 250ms;
	// negative disables stealing).
	StealInterval time.Duration
	// StealMax caps jobs claimed per poll (0 = 2).
	StealMax int
	// StealMinCost is the minimum victim backlog cost worth stealing
	// from (jobqueue cost units; 0 = any backlog).
	StealMinCost float64
	// Probe overrides the liveness probe (tests); nil probes
	// GET /v1/peer/health over HTTP.
	Probe func(ctx context.Context, peer string) error
	// Telemetry receives cluster metrics; nil disables them.
	Telemetry *telemetry.Telemetry
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 500 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 4
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 5 * time.Second
	}
	if c.RemoteTimeout <= 0 {
		c.RemoteTimeout = 2 * time.Second
	}
	if c.ClaimTTL <= 0 {
		c.ClaimTTL = 20 * time.Second
	}
	if c.StealInterval == 0 {
		c.StealInterval = 250 * time.Millisecond
	}
	if c.StealMax <= 0 {
		c.StealMax = 2
	}
	return c
}

// Node is one fleet member: it wraps a server.Server, owns the
// node-to-node protocol, and installs the remote-lookup / publish
// hooks on the server's pair compute path. Create with New, serve
// Handler, call Start for the background loops, Close to stop.
type Node struct {
	srv    *server.Server
	inner  http.Handler
	cfg    Config
	mem    *membership
	client *http.Client

	mu        sync.Mutex
	fwd       map[string]string    // forwarded job id -> owner address
	claims    map[string]*claim    // pair key -> outstanding steal claim (owner side)
	jobClaims map[string]time.Time // job id -> claim expiry (owner side)
	runCtx    context.Context
	wg        sync.WaitGroup
	stop      chan struct{}
	stopOnce  sync.Once
	started   bool

	forwards         *telemetry.Counter
	forwardFallbacks *telemetry.Counter
	peerJobs         *telemetry.Counter
	remoteHits       *telemetry.Counter
	remoteMisses     *telemetry.Counter
	replicas         *telemetry.Counter
	steals           *telemetry.Counter
	stealsGranted    *telemetry.Counter
	stealReturns     *telemetry.Counter
	redispatches     *telemetry.Counter
}

// New wraps srv as a fleet node and installs the cluster hooks on its
// compute path. The node is routable immediately; Start launches the
// heartbeat and steal loops.
func New(srv *server.Server, cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Config.Self required")
	}
	cfg = cfg.withDefaults()
	tel := cfg.Telemetry
	n := &Node{
		srv:       srv,
		inner:     srv.Handler(),
		cfg:       cfg,
		mem:       newMembership(cfg.Self, cfg.Peers, cfg.VNodes, cfg.SuspectAfter, cfg.DeadAfter, tel),
		client:    &http.Client{},
		fwd:       make(map[string]string),
		claims:    make(map[string]*claim),
		jobClaims: make(map[string]time.Time),
		stop:      make(chan struct{}),

		forwards:         tel.Counter("cluster.forwards"),
		forwardFallbacks: tel.Counter("cluster.forward_fallbacks"),
		peerJobs:         tel.Counter("cluster.peer_jobs"),
		remoteHits:       tel.Counter("cluster.remote_hits"),
		remoteMisses:     tel.Counter("cluster.remote_misses"),
		replicas:         tel.Counter("cluster.replicas"),
		steals:           tel.Counter("cluster.steals"),
		stealsGranted:    tel.Counter("cluster.steals_granted"),
		stealReturns:     tel.Counter("cluster.steal_returns"),
		redispatches:     tel.Counter("cluster.redispatches"),
	}
	n.mem.onDeath = n.voidClaimsFrom
	srv.SetCluster(n.remotePair, n.publishPair)
	return n, nil
}

// Start launches the heartbeat and work-stealing loops under ctx.
func (n *Node) Start(ctx context.Context) error {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return fmt.Errorf("cluster: node already started")
	}
	n.started = true
	n.runCtx = ctx
	n.mu.Unlock()

	n.wg.Add(1)
	go n.heartbeatLoop(ctx)
	if n.cfg.StealInterval > 0 {
		n.wg.Add(1)
		go n.stealLoop(ctx)
	}
	return nil
}

// Close stops the background loops, removes the server hooks, and
// voids every outstanding claim so no compute path waits on a claim
// that can no longer be fulfilled.
func (n *Node) Close() error {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
	n.srv.SetCluster(nil, nil)
	n.voidAllClaims()
	return nil
}

// Ring returns the current live ring (tests, cmd/ampfleet).
func (n *Node) Ring() *Ring {
	n.mem.mu.Lock()
	defer n.mem.mu.Unlock()
	return n.mem.ring
}

// heartbeatLoop probes every peer each Heartbeat tick.
func (n *Node) heartbeatLoop(ctx context.Context) {
	defer n.wg.Done()
	probe := n.cfg.Probe
	if probe == nil {
		probe = n.probePeer
	}
	t := time.NewTicker(n.cfg.Heartbeat) //ampvet:allow determinism peer liveness is inherently wall-clock
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ctx.Done():
			return
		case <-t.C:
			n.mem.heartbeat(ctx, probe)
		}
	}
}

// probePeer is the default liveness probe: GET /v1/peer/health with
// the heartbeat interval as its timeout.
func (n *Node) probePeer(ctx context.Context, peer string) error {
	rctx, cancel := context.WithTimeout(ctx, n.cfg.Heartbeat)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, peerURL(peer, "/v1/peer/health"), nil)
	if err != nil {
		return err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: peer %s health: %s", peer, resp.Status)
	}
	return nil
}

// peerURL builds a node-to-node URL.
func peerURL(peer, path string) string {
	return "http://" + peer + path
}

// JobKey computes the canonical routing key for a submission: the
// hex SHA-256 of the canonically re-marshaled spec list. Every node
// (and the load generator) derives the same key for the same specs,
// so a job has exactly one owner regardless of which node receives
// it — that owner's cache singleflight is the cross-node
// singleflight.
func JobKey(specs []server.JobSpec) string {
	b, err := json.Marshal(specs)
	if err != nil {
		// JobSpec is plain data; Marshal cannot fail.
		panic(fmt.Sprintf("cluster: marshaling job specs: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// jobRouteKey decodes a POST /v1/jobs body (single spec or JSON
// array) into its canonical routing key. Undecodable bodies return
// ok=false and are served locally, where the server produces the
// client-facing 400.
func jobRouteKey(body []byte) (string, bool) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) == 0 {
		return "", false
	}
	var specs []server.JobSpec
	if trimmed[0] == '[' {
		if json.Unmarshal(body, &specs) != nil {
			return "", false
		}
	} else {
		var sp server.JobSpec
		if json.Unmarshal(body, &sp) != nil {
			return "", false
		}
		specs = []server.JobSpec{sp}
	}
	return JobKey(specs), true
}

// Handler returns the fleet-aware mux: the public API with routing
// and proxying layered on, the /v1/peer/* node-to-node endpoints, and
// everything else (healthz, readyz, metrics) passed to the wrapped
// server.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", n.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", n.handleJobProxy)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", n.handleJobProxy)
	mux.HandleFunc("DELETE /v1/jobs/{id}", n.handleJobProxy)
	mux.HandleFunc("GET /v1/results/{key}", n.handleResult)
	mux.HandleFunc("POST /v1/peer/jobs", n.handlePeerJobs)
	mux.HandleFunc("GET /v1/peer/results/{key}", n.handlePeerResult)
	mux.HandleFunc("PUT /v1/peer/results/{key}", n.handlePeerPut)
	mux.HandleFunc("GET /v1/peer/health", n.handlePeerHealth)
	mux.HandleFunc("POST /v1/peer/claims", n.handlePeerClaims)
	mux.HandleFunc("POST /v1/peer/claims/release", n.handlePeerRelease)
	mux.Handle("/", n.inner)
	return mux
}

// serveLocal replays the (already consumed) request body into the
// wrapped server.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	n.inner.ServeHTTP(w, r2)
}

// handleSubmit routes POST /v1/jobs: the canonical job key picks the
// owner on the live ring; self-owned (or unroutable) jobs run
// locally, everything else forwards to the owner.
func (n *Node) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		apiError(w, http.StatusBadRequest, fmt.Errorf("reading job spec: %w", err))
		return
	}
	key, ok := jobRouteKey(body)
	if !ok {
		n.serveLocal(w, r, body)
		return
	}
	owner := n.mem.owner(key)
	if owner == "" || owner == n.cfg.Self {
		n.serveLocal(w, r, body)
		return
	}
	n.forward(w, r, owner, body)
}

// forward relays a submission to the owner's peer endpoint and copies
// the owner's verdict back verbatim — status, body, and the
// Retry-After header, so the owner's shed/breaker backpressure
// reaches the client through the forwarding node intact. A transport
// failure (owner unreachable, forward timeout) falls back to local
// compute: byte-identical results make the detour invisible, and the
// missed probe feeds the liveness state machine.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, owner string, body []byte) {
	ctx, cancel := context.WithTimeout(r.Context(), n.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peerURL(owner, "/v1/peer/jobs"), bytes.NewReader(body))
	if err != nil {
		n.serveLocal(w, r, body)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		n.forwardFallbacks.Inc()
		n.mem.observe(owner, false)
		n.serveLocal(w, r, body)
		return
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		n.forwardFallbacks.Inc()
		n.mem.observe(owner, false)
		n.serveLocal(w, r, body)
		return
	}
	n.forwards.Inc()
	n.mem.observe(owner, true)
	if resp.StatusCode == http.StatusAccepted {
		n.recordForwarded(owner, respBody)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(respBody)
}

// recordForwarded remembers which owner acknowledged the job ids in a
// 202 body (single status or batch array), so later status, stream
// and cancel calls for those ids proxy to the node that runs them.
func (n *Node) recordForwarded(owner string, body []byte) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	var statuses []server.JobStatus
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if json.Unmarshal(body, &statuses) != nil {
			return
		}
	} else {
		var st server.JobStatus
		if json.Unmarshal(body, &st) != nil {
			return
		}
		statuses = []server.JobStatus{st}
	}
	n.mu.Lock()
	for _, st := range statuses {
		if st.ID != "" {
			n.fwd[st.ID] = owner
		}
	}
	n.mu.Unlock()
}

// forwardOwner looks up where a job id was forwarded ("" = local).
func (n *Node) forwardOwner(id string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fwd[id]
}

// handleJobProxy serves status/stream/cancel: jobs this node
// forwarded proxy to their owner (flushing streamed lines as they
// arrive); everything else is local.
func (n *Node) handleJobProxy(w http.ResponseWriter, r *http.Request) {
	owner := n.forwardOwner(r.PathValue("id"))
	if owner == "" {
		n.inner.ServeHTTP(w, r)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, peerURL(owner, r.URL.Path), nil)
	if err != nil {
		apiError(w, http.StatusBadGateway, err)
		return
	}
	resp, err := n.client.Do(req)
	if err != nil {
		n.mem.observe(owner, false)
		apiError(w, http.StatusBadGateway, fmt.Errorf("owner %s unreachable: %w", owner, err))
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	copyFlush(w, resp.Body)
}

// copyFlush streams src to w, flushing after every read so proxied
// NDJSON lines reach the client as the owner emits them.
func copyFlush(w http.ResponseWriter, src io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		nr, err := src.Read(buf)
		if nr > 0 {
			if _, werr := w.Write(buf[:nr]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// handleResult serves GET /v1/results/{key}, extending the local
// cache with a fleet-wide lookup: on a local miss the key's ring
// owner is asked first, then the remaining live peers; a fetched
// record is cached so the next lookup is local.
func (n *Node) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if _, ok := n.srv.Cache().Peek(key); ok {
		n.inner.ServeHTTP(w, r)
		return
	}
	for _, peer := range n.mem.lookupOrder(key) {
		rctx, cancel := context.WithTimeout(r.Context(), n.cfg.RemoteTimeout)
		data, err := n.getPeerResult(rctx, peer, key)
		cancel()
		if err != nil {
			continue
		}
		n.srv.Cache().Put(key, data)
		break
	}
	n.inner.ServeHTTP(w, r)
}

// handlePeerJobs accepts a forwarded submission and always runs it
// locally — peer endpoints never re-forward, so a stale ring on one
// node cannot bounce a job in a cycle.
func (n *Node) handlePeerJobs(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		apiError(w, http.StatusBadRequest, fmt.Errorf("reading forwarded job spec: %w", err))
		return
	}
	n.peerJobs.Inc()
	// The inner server only knows the public route; the peer path is
	// this layer's framing.
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/v1/jobs"
	n.serveLocal(w, r2, body)
}

// handlePeerResult serves one cache entry to a peer (no recency
// touch, no fleet fan-out — this is the remote half of the fleet
// lookup and must terminate at one hop).
func (n *Node) handlePeerResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	data, ok := n.srv.Cache().Peek(key)
	if !ok {
		apiError(w, http.StatusNotFound, fmt.Errorf("no cached result %q", key))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write(data)
}

// handlePeerPut accepts a pair record from a peer — a stealer
// returning claimed work, or a publisher replicating to this node as
// the key's rendezvous owner. The bytes are cached and any
// outstanding claim on the key is fulfilled, waking the compute path
// blocked on it.
func (n *Node) handlePeerPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	data, err := io.ReadAll(r.Body)
	if err != nil || !json.Valid(data) {
		apiError(w, http.StatusBadRequest, fmt.Errorf("invalid result body for %q", key))
		return
	}
	n.srv.Cache().Put(key, data)
	n.fulfillClaim(key, data)
	w.WriteHeader(http.StatusNoContent)
}

// PeerHealth is the GET /v1/peer/health body: liveness plus the queue
// census stealers pick victims by.
type PeerHealth struct {
	Self        string  `json:"self"`
	State       string  `json:"state"` // "ready" | "draining"
	Pending     int     `json:"pending"`
	Running     int     `json:"running"`
	PendingCost float64 `json:"pending_cost"`
}

// handlePeerHealth serves the heartbeat probe.
func (n *Node) handlePeerHealth(w http.ResponseWriter, r *http.Request) {
	st := n.srv.Queue().Stats()
	h := PeerHealth{
		Self:        n.cfg.Self,
		State:       "ready",
		Pending:     st.Pending,
		Running:     st.Running,
		PendingCost: st.PendingCost,
	}
	if n.srv.Draining() {
		h.State = "draining"
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(h)
}

// remotePair is the server's RemoteLookup hook, tried on every pair
// cache miss before local compute, in claim-then-rendezvous order:
// an outstanding steal claim on the key means a peer is already
// simulating it — wait for the returned bytes (bounded by the claim
// TTL, then speculatively re-dispatch locally); otherwise ask the
// key's ring owner for a cached copy.
func (n *Node) remotePair(ctx context.Context, key string) ([]byte, bool) {
	if data, ok := n.waitClaim(ctx, key); ok {
		return data, true
	}
	owner := n.mem.owner(key)
	if owner == "" || owner == n.cfg.Self {
		return nil, false
	}
	rctx, cancel := context.WithTimeout(ctx, n.cfg.RemoteTimeout)
	defer cancel()
	data, err := n.getPeerResult(rctx, owner, key)
	if err != nil {
		n.remoteMisses.Inc()
		return nil, false
	}
	n.remoteHits.Inc()
	return data, true
}

// publishPair is the server's ResultPublish hook: every locally
// simulated pair record is replicated (async — the compute path must
// not block on the network) to the key's ring owner, so any node's
// remote lookup finds it at the rendezvous.
func (n *Node) publishPair(key string, data []byte) {
	owner := n.mem.owner(key)
	if owner == "" || owner == n.cfg.Self {
		return
	}
	n.mu.Lock()
	ctx := n.runCtx
	n.mu.Unlock()
	if ctx == nil {
		return // Start not called; nothing to bound the send with
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		rctx, cancel := context.WithTimeout(ctx, n.cfg.RemoteTimeout)
		defer cancel()
		if n.putPeerResult(rctx, owner, key, data) == nil {
			n.replicas.Inc()
		}
	}()
}

// getPeerResult fetches one cache entry from a peer.
func (n *Node) getPeerResult(ctx context.Context, peer, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peerURL(peer, "/v1/peer/results/"+key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("cluster: peer %s result %s: %s", peer, key, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if !json.Valid(data) {
		return nil, fmt.Errorf("cluster: peer %s returned invalid record for %s", peer, key)
	}
	return data, nil
}

// putPeerResult sends one pair record to a peer.
func (n *Node) putPeerResult(ctx context.Context, peer, key string, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, peerURL(peer, "/v1/peer/results/"+key), bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: peer %s refused result %s: %s", peer, key, resp.Status)
	}
	return nil
}

// apiError mirrors the server's JSON error shape.
func apiError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
