package cluster

import (
	"context"
	"fmt"
	"testing"

	"ampsched/internal/server"
)

// The fleet hot paths benchsnap gates in BENCH_fleet.json: every
// submission pays one routing-key hash and one ring lookup, and every
// cross-node cache miss pays one peer result round trip over loopback
// HTTP.

func BenchmarkClusterRingOwner(b *testing.B) {
	members := make([]string, 16)
	for i := range members {
		members[i] = fmt.Sprintf("10.0.0.%d:8080", i+1)
	}
	r := NewRing(members, 0)
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = JobKey([]server.JobSpec{{Pairs: 3, Seed: uint64(i)}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Owner(keys[i%len(keys)]) == "" {
			b.Fatal("empty owner")
		}
	}
}

func BenchmarkClusterJobRouteKey(b *testing.B) {
	body := []byte(`{"pairs":5,"seed":7,"fidelity":"interval"}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := jobRouteKey(body); !ok {
			b.Fatal("route key failed")
		}
	}
}

func BenchmarkClusterPeerResultFetch(b *testing.B) {
	fleet := startFleet(b, 2, nil, nil)
	const key = "benchmark-pair-record"
	data := []byte(`{"pair":["gcc","swim"],"speedup":1.25}`)
	fleet[0].srv.Cache().Put(key, data)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := fleet[1].node.getPeerResult(ctx, fleet[0].addr, key)
		if err != nil || len(got) != len(data) {
			b.Fatalf("fetch: %v (%d bytes)", err, len(got))
		}
	}
}
