package sched

import (
	"fmt"

	"ampsched/internal/amp"
	"ampsched/internal/cache"
	"ampsched/internal/monitor"
)

// ExtendedConfig parameterizes the §VII extension the paper leaves as
// future work: "We plan to improve upon these scenarios by including
// the performance (IPC) and last-level cache miss rate information
// into our swapping conditions." A composition-triggered swap is
// suppressed when the thread that would migrate to its affine core is
// memory-bound — its windows show a high L2 miss rate or an IPC too
// low for the execution-unit asymmetry to matter.
type ExtendedConfig struct {
	// Base is the underlying Fig. 5 configuration.
	Base ProposedConfig
	// MemBoundL2MissRate: at or above this window L2 miss rate the
	// migrating thread is considered memory-bound and the swap is
	// vetoed.
	MemBoundL2MissRate float64
	// MemBoundIPC: below this window IPC the thread is stall-bound
	// and the swap is vetoed.
	MemBoundIPC float64
}

// DefaultExtendedConfig returns the extension's operating point.
func DefaultExtendedConfig() ExtendedConfig {
	return ExtendedConfig{
		Base:               DefaultProposedConfig(),
		MemBoundL2MissRate: 0.30,
		MemBoundIPC:        0.10,
	}
}

// Validate reports the first problem with the configuration.
func (c *ExtendedConfig) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	if c.MemBoundL2MissRate < 0 || c.MemBoundL2MissRate > 1 {
		return fmt.Errorf("sched: extended: MemBoundL2MissRate %g outside [0,1]", c.MemBoundL2MissRate)
	}
	if c.MemBoundIPC < 0 {
		return fmt.Errorf("sched: extended: negative MemBoundIPC %g", c.MemBoundIPC)
	}
	return nil
}

// threadMemState tracks one thread's window-grain memory behavior.
type threadMemState struct {
	lastL2     cache.Stats
	lastCore   int
	lastCycle  uint64
	lastCommit uint64
	l2MissRate float64
	windowIPC  float64
	haveOne    bool
}

// ProposedExt is the proposed scheduler extended with the memory-
// boundedness guard of §VII.
type ProposedExt struct {
	cfg        ExtendedConfig
	obsFactory func(window uint64) monitor.Observer
	trackers   [2]monitor.Observer
	voter      *monitor.Voter
	mem        [2]threadMemState
	stats      amp.SchedulerStats
	retry      retryState
	tel        polTel
	em         swapEmitter
	vetoes     uint64
	intCore    int
	fpCore     int
}

// NewProposedExt builds the extended scheduler. Options attach
// telemetry or replace the hardware monitors.
func NewProposedExt(cfg ExtendedConfig, opts ...Option) *ProposedExt {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	o := buildOptions(opts)
	return &ProposedExt{cfg: cfg, obsFactory: o.obsFactory, tel: newPolTel(o.tel, "proposed-ext")}
}

// Name implements amp.MoveScheduler.
func (p *ProposedExt) Name() string { return "proposed-ext" }

// Config returns the scheduler's configuration.
func (p *ProposedExt) Config() ExtendedConfig { return p.cfg }

// Vetoes returns how many tentative swap votes the memory guard
// converted to stay votes.
func (p *ProposedExt) Vetoes() uint64 { return p.vetoes }

// SetObserver implements ObserverInjectable.
func (p *ProposedExt) SetObserver(factory func(window uint64) monitor.Observer) {
	p.obsFactory = factory
}

// Reset implements amp.MoveScheduler.
func (p *ProposedExt) Reset(v amp.View) {
	p.intCore, p.fpCore = coreIndexes(v)
	for t := 0; t < 2; t++ {
		if p.obsFactory != nil {
			p.trackers[t] = p.obsFactory(p.cfg.Base.WindowSize)
		} else {
			p.trackers[t] = monitor.NewWindowTracker(p.cfg.Base.WindowSize)
		}
		p.trackers[t].Reset(v.Arch(t))
		core := v.CoreOfThread(t)
		p.mem[t] = threadMemState{
			lastL2:     v.L2Stats(core),
			lastCore:   core,
			lastCycle:  v.Cycle(),
			lastCommit: v.Arch(t).Committed,
		}
	}
	p.voter = monitor.NewVoter(p.cfg.Base.HistoryDepth)
	p.stats = amp.SchedulerStats{}
	p.retry.reset(p.cfg.Base.RetryBackoffCycles, p.cfg.Base.ForceInterval, v)
	p.retry.retries = p.tel.retries
	p.vetoes = 0
}

// SchedStats implements amp.StatsReporter.
func (p *ProposedExt) SchedStats() amp.SchedulerStats {
	st := p.stats
	st.Vetoes = p.vetoes
	st.FailedRequests = p.retry.failed
	return st
}

// observeMem updates thread t's window-grain L2 miss rate and IPC.
func (p *ProposedExt) observeMem(v amp.View, t int) {
	core := v.CoreOfThread(t)
	cur := v.L2Stats(core)
	m := &p.mem[t]
	if core != m.lastCore {
		// The thread migrated since the last window: the delta would
		// mix two cores' counters, so just re-arm.
		m.lastL2 = cur
		m.lastCore = core
		m.lastCycle = v.Cycle()
		m.lastCommit = v.Arch(t).Committed
		m.haveOne = false
		return
	}
	d := cur.Sub(m.lastL2)
	cycles := v.Cycle() - m.lastCycle
	commits := v.Arch(t).Committed - m.lastCommit
	m.l2MissRate = d.MissRate()
	if cycles > 0 {
		m.windowIPC = float64(commits) / float64(cycles)
	}
	m.haveOne = true
	m.lastL2 = cur
	m.lastCore = core
	m.lastCycle = v.Cycle()
	m.lastCommit = v.Arch(t).Committed
}

// memBound reports whether thread t's last window looked memory- or
// stall-bound.
func (p *ProposedExt) memBound(t int) bool {
	m := &p.mem[t]
	if !m.haveOne {
		return false
	}
	return m.l2MissRate >= p.cfg.MemBoundL2MissRate || m.windowIPC < p.cfg.MemBoundIPC
}

// Tick implements amp.MoveScheduler. It follows the Fig. 5 logic of the
// base scheme, but a rule-2 trigger whose migrating beneficiary is
// memory-bound becomes a stay vote.
//
//ampvet:hotpath
func (p *ProposedExt) Tick(v amp.View) []amp.Move {
	closed := false
	for t := 0; t < 2; t++ {
		if s, ok := p.trackers[t].Observe(v.Arch(t)); ok {
			p.observeMem(v, t)
			p.tel.window(v.Cycle(), t, s)
			closed = true
		}
	}
	if !closed {
		return nil
	}
	tFP := v.ThreadOnCore(p.fpCore)
	tINT := v.ThreadOnCore(p.intCore)
	sFP, okFP := p.trackers[tFP].Latest()
	sINT, okINT := p.trackers[tINT].Latest()
	if !okFP || !okINT {
		return nil
	}
	p.stats.DecisionPoints++
	p.tel.decisions.Inc()
	p.retry.observe(v)

	base := &p.cfg.Base
	// Rule 2(i): the thread on the FP core surged in INT work. The
	// guard vetoes only when that thread is memory-bound AND the
	// partner would not itself profit from reaching the FP core —
	// rule 2 exists because a swap helps both threads, so a
	// memory-bound beneficiary alone is not a reason to deny the
	// partner a core it craves.
	intSurge := sFP.IntPct >= base.IntHigh && sINT.IntPct <= base.IntLow
	if intSurge && p.memBound(tFP) && sINT.FPPct < base.FPHigh {
		intSurge = false
		p.vetoes++
		p.tel.vetoes.Inc()
	}
	// Rule 2(ii): symmetric for an FP surge on the INT core.
	fpSurge := sINT.FPPct >= base.FPHigh && sFP.FPPct <= base.FPLow
	if fpSurge && p.memBound(tINT) && sFP.IntPct < base.IntHigh {
		fpSurge = false
		p.vetoes++
		p.tel.vetoes.Inc()
	}
	tentative := intSurge || fpSurge
	p.voter.Push(tentative)
	p.tel.vote(tentative)
	majority := p.voter.Majority()
	if p.retry.holdoff(v.Cycle()) {
		if majority {
			p.tel.holdoffs.Inc()
		}
		return nil
	}
	if majority {
		p.tel.majorityFires.Inc()
		p.stats.SwapRequests++
		p.tel.requests.Inc()
		p.voter.Clear()
		return p.em.swap(v)
	}

	if !base.DisableForcedSwap && v.Cycle()-v.LastSwapCycle() >= base.ForceInterval {
		forced := (sFP.IntPct >= base.IntHigh && sINT.IntPct >= base.IntHigh) ||
			(sINT.FPPct >= base.FPHigh && sFP.FPPct >= base.FPHigh)
		if forced {
			p.tel.forcedSwaps.Inc()
			p.stats.SwapRequests++
			p.tel.requests.Inc()
			p.voter.Clear()
			return p.em.swap(v)
		}
	}
	return nil
}

var _ amp.MoveScheduler = (*ProposedExt)(nil)
var _ amp.StatsReporter = (*ProposedExt)(nil)
var _ ObserverInjectable = (*ProposedExt)(nil)
