package sched

import (
	"testing"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/workload"
)

// runRealPairLimit runs benchmark a (starting on the INT core) and b
// (starting on the FP core) under scheduler s on the real simulator.
func runRealPairLimit(t *testing.T, a, b string, s amp.MoveScheduler, limit uint64) amp.Result {
	t.Helper()
	ba, err := workload.ByName(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := workload.ByName(b)
	if err != nil {
		t.Fatal(err)
	}
	t0 := amp.NewThread(0, ba, 31, 0)
	t1 := amp.NewThread(1, bb, 32, 1<<40)
	sys := amp.MustSystem(
		[2]*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()},
		[2]*amp.Thread{t0, t1}, s, amp.Config{})
	return sys.MustRun(limit)
}

func TestProposedOnRealSystemSwapsMisplacedPair(t *testing.T) {
	res := runRealPairLimit(t, "fpstress", "intstress",
		NewProposed(DefaultProposedConfig()), 300_000)
	if res.Swaps == 0 {
		t.Fatal("proposed never swapped a misplaced strongly-flavored pair")
	}
	if res.Swaps > 3 {
		t.Fatalf("proposed thrashed: %d swaps on a stationary pair", res.Swaps)
	}
}

func TestProposedExtOnRealSystemMatchesBaseWhenComputeBound(t *testing.T) {
	base := runRealPairLimit(t, "fpstress", "intstress",
		NewProposed(DefaultProposedConfig()), 300_000)
	ext := runRealPairLimit(t, "fpstress", "intstress",
		NewProposedExt(DefaultExtendedConfig()), 300_000)
	if base.Swaps != ext.Swaps {
		t.Fatalf("guard changed behavior on compute-bound pair: %d vs %d swaps",
			base.Swaps, ext.Swaps)
	}
}

func TestStaticOnRealSystemNeverSwaps(t *testing.T) {
	res := runRealPairLimit(t, "gcc", "equake", Static{}, 150_000)
	if res.Swaps != 0 {
		t.Fatalf("static swapped %d times", res.Swaps)
	}
}

func TestRRSwapCountOnRealSystem(t *testing.T) {
	rr := NewRoundRobinInterval(60_000)
	res := runRealPairLimit(t, "gcc", "equake", rr, 250_000)
	if res.Swaps == 0 {
		t.Fatal("round robin never swapped")
	}
	// Swap count bounded by elapsed cycles / interval.
	if res.Swaps > res.Cycles/60_000+1 {
		t.Fatalf("too many swaps: %d in %d cycles", res.Swaps, res.Cycles)
	}
}

func TestSchedulerNamesDistinct(t *testing.T) {
	names := map[string]bool{}
	for _, s := range []amp.MoveScheduler{
		Static{},
		NewProposed(DefaultProposedConfig()),
		NewProposedExt(DefaultExtendedConfig()),
		NewRoundRobin(1),
		NewSampling(DefaultSamplingConfig()),
	} {
		if names[s.Name()] {
			t.Fatalf("duplicate scheduler name %q", s.Name())
		}
		names[s.Name()] = true
	}
}
