package sched

import (
	"testing"

	"ampsched/internal/cpu"
	"ampsched/internal/workload"
)

func TestOracleProfileValidation(t *testing.T) {
	intC, fpC := cpu.IntCoreConfig(), cpu.FPCoreConfig()
	a := workload.MustByName("pi")
	if _, err := OracleProfile(intC, fpC, a, a, 1, 2, 0, 100); err == nil {
		t.Fatal("zero limit accepted")
	}
	if _, err := OracleProfile(intC, fpC, a, a, 1, 2, 1000, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestOracleSwapsMisplacedPair(t *testing.T) {
	intC, fpC := cpu.IntCoreConfig(), cpu.FPCoreConfig()
	// fpstress starts on the INT core (thread 0): the profiles say
	// the swapped mapping is far better, so the oracle swaps once and
	// settles.
	o, err := OracleProfile(intC, fpC,
		workload.MustByName("fpstress"), workload.MustByName("intstress"),
		31, 32, 100_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	res := runRealPairLimit(t, "fpstress", "intstress", o, 200_000)
	if res.Swaps == 0 {
		t.Fatal("oracle never swapped a misplaced pair")
	}
	if res.Swaps > 2 {
		t.Fatalf("oracle thrashed: %d swaps on a stationary pair", res.Swaps)
	}
	st := o.SchedStats()
	if st.DecisionPoints == 0 {
		t.Fatal("no decision points recorded")
	}
}

func TestOracleStableWhenWellPlaced(t *testing.T) {
	intC, fpC := cpu.IntCoreConfig(), cpu.FPCoreConfig()
	o, err := OracleProfile(intC, fpC,
		workload.MustByName("intstress"), workload.MustByName("fpstress"),
		31, 32, 100_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	res := runRealPairLimit(t, "intstress", "fpstress", o, 200_000)
	if res.Swaps != 0 {
		t.Fatalf("oracle swapped %d times on a correctly placed pair", res.Swaps)
	}
}

func TestOracleLookupWraps(t *testing.T) {
	o := &Oracle{window: 100, minGain: 1.1}
	o.ipcw[0][0] = []float64{1, 2, 3}
	if o.lookup(0, 0, 0) != 1 || o.lookup(0, 0, 4) != 2 {
		t.Fatalf("lookup wrap wrong: %g %g", o.lookup(0, 0, 0), o.lookup(0, 0, 4))
	}
}
