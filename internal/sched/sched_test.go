package sched

import (
	"testing"

	"ampsched/internal/amp"
	"ampsched/internal/cache"
	"ampsched/internal/cpu"
	"ampsched/internal/isa"
	"ampsched/internal/monitor"
)

// fakeView is a scriptable amp.View for driving schedulers directly.
type fakeView struct {
	cycle    uint64
	binding  [2]int // binding[core] = thread
	arch     [2]cpu.ThreadArch
	energy   [2]float64
	lastSwap uint64
	failures uint64
	cfgs     [2]*cpu.Config
	l2       [2]cache.Stats
}

func newFakeView() *fakeView {
	return &fakeView{
		binding: [2]int{0, 1},
		cfgs:    [2]*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()},
	}
}

func (f *fakeView) Cycle() uint64             { return f.cycle }
func (f *fakeView) ThreadOnCore(core int) int { return f.binding[core] }
func (f *fakeView) CoreOfThread(thread int) int {
	if f.binding[0] == thread {
		return 0
	}
	return 1
}
func (f *fakeView) Arch(thread int) *cpu.ThreadArch   { return &f.arch[thread] }
func (f *fakeView) ThreadEnergyNJ(thread int) float64 { return f.energy[thread] }
func (f *fakeView) LastSwapCycle() uint64             { return f.lastSwap }
func (f *fakeView) SwapFailures() uint64              { return f.failures }
func (f *fakeView) CoreConfig(core int) *cpu.Config   { return f.cfgs[core] }
func (f *fakeView) L2Stats(core int) cache.Stats      { return f.l2[core] }
func (f *fakeView) FreqGHz() float64                  { return 2.0 }
func (f *fakeView) NumCores() int                     { return 2 }
func (f *fakeView) NumThreads() int                   { return 2 }
func (f *fakeView) AffinityMask(thread int) uint64    { return amp.AllPools }
func (f *fakeView) CorePool(core int) int             { return core }

// commit advances a thread's counters with the given composition
// percentages over n instructions.
func (f *fakeView) commit(thread int, n uint64, intPct, fpPct float64) {
	a := &f.arch[thread]
	ni := uint64(float64(n) * intPct / 100)
	nf := uint64(float64(n) * fpPct / 100)
	a.CommittedByClass[isa.IntALU] += ni
	a.CommittedByClass[isa.FPALU] += nf
	a.CommittedByClass[isa.Load] += n - ni - nf
	a.Committed += n
}

func (f *fakeView) swapBinding() {
	f.binding[0], f.binding[1] = f.binding[1], f.binding[0]
	f.lastSwap = f.cycle
}

func TestCoreIndexes(t *testing.T) {
	v := newFakeView()
	i, fp := coreIndexes(v)
	if i != 0 || fp != 1 {
		t.Fatalf("coreIndexes = %d, %d", i, fp)
	}
	// Swapped placement is detected by name.
	v.cfgs[0], v.cfgs[1] = v.cfgs[1], v.cfgs[0]
	i, fp = coreIndexes(v)
	if i != 1 || fp != 0 {
		t.Fatalf("coreIndexes after swap = %d, %d", i, fp)
	}
}

func TestStaticNeverSwaps(t *testing.T) {
	v := newFakeView()
	s := Static{}
	s.Reset(v)
	for c := uint64(0); c < 10000; c++ {
		v.cycle = c
		if len(s.Tick(v)) != 0 {
			t.Fatal("static swapped")
		}
	}
}

func TestProposedConfigValidation(t *testing.T) {
	good := DefaultProposedConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*ProposedConfig){
		func(c *ProposedConfig) { c.WindowSize = 0 },
		func(c *ProposedConfig) { c.HistoryDepth = 0 },
		func(c *ProposedConfig) { c.ForceInterval = 0 },
		func(c *ProposedConfig) { c.IntHigh = -1 },
		func(c *ProposedConfig) { c.FPLow = 101 },
	}
	for i, mutate := range bads {
		c := DefaultProposedConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// ForceInterval may be zero when forced swaps are disabled.
	c := DefaultProposedConfig()
	c.ForceInterval = 0
	c.DisableForcedSwap = true
	if err := c.Validate(); err != nil {
		t.Errorf("disabled forced swap with zero interval rejected: %v", err)
	}
}

func TestDefaultProposedMatchesPaper(t *testing.T) {
	c := DefaultProposedConfig()
	if c.WindowSize != 1000 || c.HistoryDepth != 5 {
		t.Fatalf("window/history: %d/%d", c.WindowSize, c.HistoryDepth)
	}
	if c.IntHigh != 55 || c.IntLow != 35 || c.FPHigh != 20 || c.FPLow != 7 {
		t.Fatalf("thresholds: %+v", c)
	}
}

// driveProposed feeds w windows of the given compositions (thread 0 on
// the INT core, thread 1 on the FP core unless v says otherwise) and
// returns true if the scheduler requested a swap at any point.
func driveProposed(p *Proposed, v *fakeView, windows int,
	t0Int, t0FP, t1Int, t1FP float64) bool {
	for i := 0; i < windows; i++ {
		v.cycle += 1000
		v.commit(0, 1000, t0Int, t0FP)
		v.commit(1, 1000, t1Int, t1FP)
		if len(p.Tick(v)) != 0 {
			return true
		}
	}
	return false
}

func TestProposedSwapRuleFPDirection(t *testing.T) {
	// Thread on INT core turns FP-heavy (%FP>=20) while thread on FP
	// core has almost no FP (%FP<=7): rule 2(ii) fires after the
	// 5-window majority.
	v := newFakeView()
	p := NewProposed(DefaultProposedConfig())
	p.Reset(v)
	if !driveProposed(p, v, 8, 10, 60, 70, 0) {
		t.Fatal("rule 2(ii) did not fire")
	}
	st := p.SchedStats()
	if st.SwapRequests != 1 {
		t.Fatalf("swap requests = %d", st.SwapRequests)
	}
}

func TestProposedSwapRuleIntDirection(t *testing.T) {
	// Thread on FP core is INT-heavy (%INT>=55) while thread on INT
	// core is not using it (%INT<=35): rule 2(i).
	v := newFakeView()
	p := NewProposed(DefaultProposedConfig())
	p.Reset(v)
	if !driveProposed(p, v, 8, 20, 50, 70, 0) {
		t.Fatal("rule 2(i) did not fire")
	}
}

func TestProposedNoSwapWhenWellPlaced(t *testing.T) {
	// INT-heavy thread on INT core, FP-heavy on FP core: no rule
	// fires, ever.
	v := newFakeView()
	cfg := DefaultProposedConfig()
	cfg.DisableForcedSwap = true
	p := NewProposed(cfg)
	p.Reset(v)
	if driveProposed(p, v, 50, 70, 0, 10, 60) {
		t.Fatal("spurious swap for well-placed threads")
	}
}

func TestProposedNeedsMajority(t *testing.T) {
	// A single qualifying window among many non-qualifying ones must
	// not trigger a swap (history depth 5, strict majority).
	v := newFakeView()
	cfg := DefaultProposedConfig()
	cfg.DisableForcedSwap = true
	p := NewProposed(cfg)
	p.Reset(v)
	// Two qualifying windows...
	if driveProposed(p, v, 2, 10, 60, 70, 0) {
		t.Fatal("swap before history filled")
	}
	// ...then non-qualifying ones.
	if driveProposed(p, v, 10, 70, 0, 10, 60) {
		t.Fatal("swap with stale minority votes")
	}
}

func TestProposedForcedFairnessSwap(t *testing.T) {
	// Both threads FP-heavy: rule 2 cannot fire, but after the force
	// interval with no swap, rule 3 swaps for fairness.
	v := newFakeView()
	cfg := DefaultProposedConfig()
	cfg.ForceInterval = 50_000
	p := NewProposed(cfg)
	p.Reset(v)
	swapped := driveProposed(p, v, 60, 5, 60, 5, 60)
	if !swapped {
		t.Fatal("forced fairness swap did not fire")
	}
	if v.cycle < 50_000 {
		t.Fatal("forced swap fired before the interval")
	}
}

func TestProposedForcedSwapDisabled(t *testing.T) {
	v := newFakeView()
	cfg := DefaultProposedConfig()
	cfg.ForceInterval = 50_000
	cfg.DisableForcedSwap = true
	p := NewProposed(cfg)
	p.Reset(v)
	if driveProposed(p, v, 100, 5, 60, 5, 60) {
		t.Fatal("forced swap fired despite being disabled")
	}
}

func TestProposedTracksBindingAfterSwap(t *testing.T) {
	// After a swap, the rules must be evaluated against the new
	// binding (the monitor follows the thread, the rule follows the
	// core).
	v := newFakeView()
	cfg := DefaultProposedConfig()
	cfg.DisableForcedSwap = true
	p := NewProposed(cfg)
	p.Reset(v)
	// Misplaced: t0 (INT core) is FP-heavy; t1 (FP core) is INT-only.
	if !driveProposed(p, v, 8, 10, 60, 70, 0) {
		t.Fatal("initial swap did not fire")
	}
	v.swapBinding()
	// Now both are well placed; no further swap should fire even
	// after many windows.
	if driveProposed(p, v, 30, 10, 60, 70, 0) {
		t.Fatal("swapped again despite correct placement")
	}
}

func TestProposedDecisionPointsCounted(t *testing.T) {
	v := newFakeView()
	cfg := DefaultProposedConfig()
	cfg.DisableForcedSwap = true
	p := NewProposed(cfg)
	p.Reset(v)
	driveProposed(p, v, 20, 70, 0, 10, 60)
	st := p.SchedStats()
	if st.DecisionPoints < 15 {
		t.Fatalf("decision points = %d, want ~20", st.DecisionPoints)
	}
}

// fixedEstimator returns a constant INT/FP ratio.
type fixedEstimator struct{ r float64 }

func (f fixedEstimator) Name() string                                 { return "fixed" }
func (f fixedEstimator) RatioIntOverFP(intPct, fpPct float64) float64 { return f.r }

// biasedEstimator returns >1 for INT-heavy compositions and <1 for
// FP-heavy ones — a caricature of the real profile.
type biasedEstimator struct{}

func (biasedEstimator) Name() string { return "biased" }
func (biasedEstimator) RatioIntOverFP(intPct, fpPct float64) float64 {
	return 1 + (intPct-fpPct)/100
}

func TestHPEConfigValidation(t *testing.T) {
	good := DefaultHPEConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	c := DefaultHPEConfig()
	c.Interval = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero interval accepted")
	}
	c = DefaultHPEConfig()
	c.SpeedupThreshold = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero threshold accepted")
	}
}

func TestNewHPEPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil estimator accepted")
		}
	}()
	NewHPE(DefaultHPEConfig(), nil)
}

// driveHPE advances the fake view to the next HPE decision point with
// the given per-thread compositions and energies.
func driveHPE(h *HPE, v *fakeView, interval uint64, t0Int, t0FP, t1Int, t1FP float64) bool {
	target := v.cycle + interval
	for v.cycle < target {
		v.cycle += 1000
		v.commit(0, 500, t0Int, t0FP)
		v.commit(1, 500, t1Int, t1FP)
		v.energy[0] += 1000
		v.energy[1] += 1000
		if len(h.Tick(v)) != 0 {
			return true
		}
	}
	return false
}

func TestHPESwapsMisplacedThreads(t *testing.T) {
	// t0 (INT core) is FP-heavy, t1 (FP core) is INT-heavy: a biased
	// estimator predicts both improve by swapping.
	v := newFakeView()
	cfg := HPEConfig{Interval: 100_000, SpeedupThreshold: 1.05}
	h := NewHPE(cfg, biasedEstimator{})
	h.Reset(v)
	if !driveHPE(h, v, 200_000, 5, 70, 80, 0) {
		t.Fatal("HPE did not swap misplaced threads")
	}
	if h.SchedStats().SwapRequests == 0 {
		t.Fatal("swap not recorded")
	}
}

func TestHPEKeepsWellPlacedThreads(t *testing.T) {
	v := newFakeView()
	cfg := HPEConfig{Interval: 100_000, SpeedupThreshold: 1.05}
	h := NewHPE(cfg, biasedEstimator{})
	h.Reset(v)
	if driveHPE(h, v, 500_000, 80, 0, 5, 70) {
		t.Fatal("HPE swapped well-placed threads")
	}
	if h.SchedStats().DecisionPoints == 0 {
		t.Fatal("no decision points evaluated")
	}
}

func TestHPERespectsThreshold(t *testing.T) {
	// Ratio 1.0 estimator: estimated speedup of a swap is exactly 1,
	// below any threshold > 1 — never swap.
	v := newFakeView()
	h := NewHPE(HPEConfig{Interval: 50_000, SpeedupThreshold: 1.05}, fixedEstimator{r: 1})
	h.Reset(v)
	if driveHPE(h, v, 400_000, 50, 20, 50, 20) {
		t.Fatal("HPE swapped with no predicted benefit")
	}
}

func TestHPEDecidesOnlyAtInterval(t *testing.T) {
	v := newFakeView()
	h := NewHPE(HPEConfig{Interval: 100_000, SpeedupThreshold: 1.05}, biasedEstimator{})
	h.Reset(v)
	for v.cycle < 99_000 {
		v.cycle += 1000
		v.commit(0, 500, 5, 70)
		v.commit(1, 500, 80, 0)
		v.energy[0] += 1000
		v.energy[1] += 1000
		if len(h.Tick(v)) != 0 {
			t.Fatal("HPE decided before its interval")
		}
	}
}

func TestHPEName(t *testing.T) {
	h := NewHPE(DefaultHPEConfig(), fixedEstimator{r: 1})
	if h.Name() != "hpe-fixed" {
		t.Fatalf("name = %q", h.Name())
	}
	if h.Estimator().Name() != "fixed" {
		t.Fatal("estimator accessor wrong")
	}
}

func TestRoundRobinSwapsEveryInterval(t *testing.T) {
	v := newFakeView()
	r := NewRoundRobinInterval(10_000)
	r.Reset(v)
	swaps := 0
	for c := uint64(0); c < 100_000; c += 100 {
		v.cycle = c
		if len(r.Tick(v)) != 0 {
			swaps++
		}
	}
	if swaps < 9 || swaps > 10 {
		t.Fatalf("swaps = %d over 10 intervals", swaps)
	}
	st := r.SchedStats()
	if st.SwapRequests != uint64(swaps) || st.DecisionPoints != uint64(swaps) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRoundRobinMultiple(t *testing.T) {
	r1 := NewRoundRobin(1)
	r2 := NewRoundRobin(2)
	if r2.Interval() != 2*r1.Interval() {
		t.Fatal("multiple not applied")
	}
	if r1.Interval() != amp.ContextSwitchCycles {
		t.Fatal("1x interval is not the context-switch period")
	}
}

func TestRoundRobinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("multiple 0 accepted")
		}
	}()
	NewRoundRobin(0)
}

func TestRoundRobinIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval accepted")
		}
	}()
	NewRoundRobinInterval(0)
}

// failingView is a fakeView whose swap requests always fail: the
// caller bumps failures instead of swapping the binding.
func (f *fakeView) failSwap() { f.failures++ }

func TestProposedRetriesWithBackoffAfterSwapFailure(t *testing.T) {
	v := newFakeView()
	cfg := DefaultProposedConfig()
	cfg.DisableForcedSwap = true
	cfg.RetryBackoffCycles = 10_000
	p := NewProposed(cfg)
	p.Reset(v)

	// Misplaced pair: rule 2(i) fires after the 5-window majority.
	if !driveProposed(p, v, 8, 20, 50, 70, 0) {
		t.Fatal("initial swap request never fired")
	}
	v.failSwap() // the controller drops it

	// Within the backoff window the scheduler must not re-request,
	// even though the pair is still misplaced.
	requests := 0
	for i := 0; i < 9; i++ { // 9 windows * 1000 cycles < 10k backoff
		v.cycle += 1000
		v.commit(0, 1000, 20, 0)
		v.commit(1, 1000, 70, 0)
		if len(p.Tick(v)) != 0 {
			requests++
		}
	}
	if requests != 0 {
		t.Fatalf("%d re-requests inside the backoff window", requests)
	}

	// Once the backoff expires the request must come back (retry, not
	// abandonment).
	if !driveProposed(p, v, 20, 20, 50, 70, 0) {
		t.Fatal("no retry after backoff expired")
	}
	if st := p.SchedStats(); st.FailedRequests != 1 {
		t.Fatalf("FailedRequests = %d", st.FailedRequests)
	}
}

func TestProposedBackoffDoublesAndResetsOnSuccess(t *testing.T) {
	v := newFakeView()
	var r retryState
	r.reset(1000, 64_000, v)

	v.cycle = 10_000
	v.failSwap()
	r.observe(v)
	if !r.holdoff(10_500) || r.holdoff(11_000) {
		t.Fatalf("first backoff window wrong: until=%d", r.until)
	}
	v.cycle = 11_000
	v.failSwap()
	r.observe(v)
	if !r.holdoff(12_500) || r.holdoff(13_000) {
		t.Fatalf("second backoff did not double: until=%d", r.until)
	}
	// A successful swap clears the backoff entirely.
	v.cycle = 12_000
	v.swapBinding()
	r.observe(v)
	if r.holdoff(12_000) || r.backoff != 0 {
		t.Fatalf("backoff survived a successful swap: %+v", r)
	}
	if r.failed != 2 {
		t.Fatalf("failed = %d", r.failed)
	}
}

func TestRetryBackoffCaps(t *testing.T) {
	v := newFakeView()
	var r retryState
	r.reset(1000, 4000, v)
	for i := 0; i < 10; i++ {
		v.cycle += 100
		v.failSwap()
		r.observe(v)
	}
	if r.backoff > 4000 {
		t.Fatalf("backoff %d exceeds cap", r.backoff)
	}
}

func TestProposedObserverInjection(t *testing.T) {
	// A factory that drops every sample starves the scheduler: no
	// decision points, no swaps, but also no wedge or panic.
	v := newFakeView()
	cfg := DefaultProposedConfig()
	var built int
	p := NewProposed(cfg, WithObserverFactory(func(window uint64) monitor.Observer {
		built++
		return dropAll{window: window}
	}))
	p.Reset(v)
	if built != 2 {
		t.Fatalf("factory built %d observers", built)
	}
	if driveProposed(p, v, 20, 20, 50, 70, 0) {
		t.Fatal("swap requested with all samples dropped")
	}
	if st := p.SchedStats(); st.DecisionPoints != 0 {
		t.Fatalf("decision points %d despite total sample loss", st.DecisionPoints)
	}
}

// dropAll is a monitor.Observer that never delivers a sample.
type dropAll struct{ window uint64 }

func (d dropAll) Window() uint64                                 { return d.window }
func (d dropAll) Reset(*cpu.ThreadArch)                          {}
func (d dropAll) Observe(*cpu.ThreadArch) (monitor.Sample, bool) { return monitor.Sample{}, false }
func (d dropAll) Latest() (monitor.Sample, bool)                 { return monitor.Sample{}, false }
