package sched

import (
	"testing"

	"ampsched/internal/cache"
)

func TestExtendedConfigValidation(t *testing.T) {
	good := DefaultExtendedConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	c := DefaultExtendedConfig()
	c.MemBoundL2MissRate = 1.5
	if err := c.Validate(); err == nil {
		t.Fatal("miss rate > 1 accepted")
	}
	c = DefaultExtendedConfig()
	c.MemBoundIPC = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative IPC threshold accepted")
	}
	c = DefaultExtendedConfig()
	c.Base.WindowSize = 0
	if err := c.Validate(); err == nil {
		t.Fatal("invalid base accepted")
	}
}

// driveExt advances windows like driveProposed, also advancing the L2
// counters of the core thread tid sits on with the given miss rate.
func driveExt(p *ProposedExt, v *fakeView, windows int,
	t0Int, t0FP, t1Int, t1FP float64, missRate [2]float64) bool {
	for i := 0; i < windows; i++ {
		v.cycle += 1000
		v.commit(0, 1000, t0Int, t0FP)
		v.commit(1, 1000, t1Int, t1FP)
		for th := 0; th < 2; th++ {
			core := v.CoreOfThread(th)
			v.l2[core].Accesses += 100
			v.l2[core].Misses += uint64(100 * missRate[th])
		}
		if len(p.Tick(v)) != 0 {
			return true
		}
	}
	return false
}

func TestExtSwapsWhenNotMemBound(t *testing.T) {
	// Same misplacement as the base scheduler test; low miss rates:
	// the extension must behave exactly like the base and swap.
	v := newFakeView()
	cfg := DefaultExtendedConfig()
	cfg.Base.DisableForcedSwap = true
	p := NewProposedExt(cfg)
	p.Reset(v)
	if !driveExt(p, v, 10, 10, 60, 70, 0, [2]float64{0.01, 0.01}) {
		t.Fatal("extension did not swap cleanly-placed compute-bound threads")
	}
	if p.Vetoes() != 0 {
		t.Fatalf("spurious vetoes: %d", p.Vetoes())
	}
}

func TestExtVetoesMemBoundBeneficiary(t *testing.T) {
	// Thread 0 (INT core) surges in FP — but it is memory-bound
	// (80% L2 miss rate), so moving it to the FP core cannot help:
	// the guard converts the trigger into a stay vote.
	v := newFakeView()
	cfg := DefaultExtendedConfig()
	cfg.Base.DisableForcedSwap = true
	p := NewProposedExt(cfg)
	p.Reset(v)
	// Thread 1 stays below IntHigh so only rule 2(ii) can trigger.
	if driveExt(p, v, 30, 10, 60, 30, 0, [2]float64{0.8, 0.01}) {
		t.Fatal("extension swapped a memory-bound thread")
	}
	if p.Vetoes() == 0 {
		t.Fatal("guard never fired")
	}
	if p.SchedStats().DecisionPoints == 0 {
		t.Fatal("no decision points")
	}
}

func TestExtVetoLowIPC(t *testing.T) {
	// Commit only 1000 instructions per 100_000 cycles: window IPC
	// 0.01 < MemBoundIPC 0.10 -> veto even with perfect caches.
	v := newFakeView()
	cfg := DefaultExtendedConfig()
	cfg.Base.DisableForcedSwap = true
	p := NewProposedExt(cfg)
	p.Reset(v)
	swapped := false
	for i := 0; i < 30 && !swapped; i++ {
		v.cycle += 100_000
		v.commit(0, 1000, 10, 60)
		// The partner must not crave the other core (IntPct below
		// IntHigh) or the guard correctly defers to its benefit.
		v.commit(1, 1000, 30, 0)
		for th := 0; th < 2; th++ {
			core := v.CoreOfThread(th)
			v.l2[core].Accesses += 100 // no misses
		}
		swapped = len(p.Tick(v)) != 0
	}
	if swapped {
		t.Fatal("extension swapped a stall-bound thread")
	}
	if p.Vetoes() == 0 {
		t.Fatal("low-IPC guard never fired")
	}
}

func TestExtForcedSwapStillWorks(t *testing.T) {
	// The fairness swap of Fig. 5 step 3 is not subject to the guard.
	v := newFakeView()
	cfg := DefaultExtendedConfig()
	cfg.Base.ForceInterval = 50_000
	p := NewProposedExt(cfg)
	p.Reset(v)
	if !driveExt(p, v, 80, 5, 60, 5, 60, [2]float64{0.9, 0.9}) {
		t.Fatal("forced fairness swap did not fire under the extension")
	}
}

func TestExtRearmsAfterMigration(t *testing.T) {
	// After a binding change the L2 delta would mix cores; the state
	// must re-arm instead of producing a bogus miss rate.
	v := newFakeView()
	cfg := DefaultExtendedConfig()
	cfg.Base.DisableForcedSwap = true
	p := NewProposedExt(cfg)
	p.Reset(v)
	driveExt(p, v, 3, 10, 60, 70, 0, [2]float64{0.01, 0.01})
	v.swapBinding()
	// One window after migration: memBound must not fire from stale
	// cross-core deltas; scheme keeps working without panics.
	driveExt(p, v, 5, 10, 60, 70, 0, [2]float64{0.01, 0.01})
}

func TestExtL2StatsInterface(t *testing.T) {
	v := newFakeView()
	v.l2[0] = cache.Stats{Accesses: 10, Misses: 5}
	if v.L2Stats(0).MissRate() != 0.5 {
		t.Fatal("fake view L2 stats wrong")
	}
}
