package sched

import (
	"fmt"

	"ampsched/internal/amp"
	"ampsched/internal/telemetry"
)

// MorphConfig parameterizes the morphing scheduler — a simplified
// version of the policy of Rodrigues et al. [5] that this paper's
// §III positions itself against. In baseline (unmorphed) mode it
// applies the paper's Fig. 5 swap rules; when one thread's utility
// collapses (its window IPC stays under LowIPC — typically a long
// memory-bound stretch) while the other thread runs hot (> HighIPC),
// it morphs the cores into a strong+weak pair and gives the hot
// thread the strong core. When the parked thread recovers, it
// unmorphs.
type MorphConfig struct {
	// Base supplies the swap rules and the monitoring window.
	Base ProposedConfig
	// LowIPC: a thread whose window IPC stays below this is a
	// candidate to be parked on the weak core.
	LowIPC float64
	// HighIPC: the partner must exceed this to justify morphing.
	HighIPC float64
	// ConsecWindows of agreement required before morphing (and, with
	// hysteresis, before unmorphing).
	ConsecWindows int
	// RecoveryFactor: unmorph when the parked thread's window IPC
	// exceeds LowIPC*RecoveryFactor.
	RecoveryFactor float64
	// MinMorphCycles prevents immediate unmorphing.
	MinMorphCycles uint64
}

// DefaultMorphConfig returns a conservative operating point.
func DefaultMorphConfig() MorphConfig {
	return MorphConfig{
		Base:           DefaultProposedConfig(),
		LowIPC:         0.12,
		HighIPC:        0.50,
		ConsecWindows:  3,
		RecoveryFactor: 2.0,
		MinMorphCycles: 100_000,
	}
}

// Validate reports the first problem with the configuration.
func (c *MorphConfig) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	if c.LowIPC <= 0 || c.HighIPC <= c.LowIPC {
		return fmt.Errorf("sched: morph: need 0 < LowIPC < HighIPC, got %g, %g", c.LowIPC, c.HighIPC)
	}
	if c.ConsecWindows <= 0 {
		return fmt.Errorf("sched: morph: non-positive ConsecWindows")
	}
	if c.RecoveryFactor <= 1 {
		return fmt.Errorf("sched: morph: RecoveryFactor must exceed 1")
	}
	return nil
}

// Morphing implements amp.MoveScheduler (swap rules via an embedded
// Proposed) and amp.MorphPolicy (morph decisions).
type Morphing struct {
	cfg      MorphConfig
	proposed *Proposed

	// Per-thread window-IPC monitors.
	lastCommit [2]uint64
	lastCycle  [2]uint64
	nextEdge   [2]uint64
	winIPC     [2]float64
	haveIPC    [2]bool

	morphed        bool
	strongThread   int
	morphStart     uint64
	consecOn       int
	consecOff      int
	morphOns       uint64
	closedThisTick bool

	telOns  *telemetry.Counter
	telOffs *telemetry.Counter
}

// NewMorphing builds the scheduler. Options are shared with the
// embedded Proposed scheme (its counters appear under
// "sched.proposed.*"); the morph decisions themselves are counted as
// "sched.morphing.morph_ons"/"morph_offs".
func NewMorphing(cfg MorphConfig, opts ...Option) *Morphing {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	o := buildOptions(opts)
	m := &Morphing{cfg: cfg, proposed: NewProposed(cfg.Base, opts...)}
	if o.tel != nil {
		m.telOns = o.tel.Counter("sched.morphing.morph_ons")
		m.telOffs = o.tel.Counter("sched.morphing.morph_offs")
	}
	return m
}

// Name implements amp.MoveScheduler.
func (m *Morphing) Name() string { return "morphing" }

// MorphCount returns how many times the policy requested MorphOn.
func (m *Morphing) MorphCount() uint64 { return m.morphOns }

// Reset implements amp.MoveScheduler.
func (m *Morphing) Reset(v amp.View) {
	m.proposed.Reset(v)
	for t := 0; t < 2; t++ {
		arch := v.Arch(t)
		m.lastCommit[t] = arch.Committed
		m.lastCycle[t] = v.Cycle()
		m.nextEdge[t] = arch.Committed + m.cfg.Base.WindowSize
		m.haveIPC[t] = false
	}
	m.morphed = false
	m.consecOn = 0
	m.consecOff = 0
	m.morphOns = 0
}

// SchedStats implements amp.StatsReporter.
func (m *Morphing) SchedStats() amp.SchedulerStats { return m.proposed.SchedStats() }

// observe closes per-thread IPC windows, setting closedThisTick when
// at least one window closed (morph decisions are window-aligned, not
// cycle-aligned).
func (m *Morphing) observe(v amp.View) {
	m.closedThisTick = false
	for t := 0; t < 2; t++ {
		arch := v.Arch(t)
		if arch.Committed < m.nextEdge[t] {
			// A thread parked behind a long stall never closes its
			// commit window; close on a generous cycle budget instead
			// so its collapsed IPC becomes visible.
			if v.Cycle()-m.lastCycle[t] < 8*m.cfg.Base.WindowSize {
				continue
			}
		}
		dC := arch.Committed - m.lastCommit[t]
		dCy := v.Cycle() - m.lastCycle[t]
		if dCy == 0 {
			continue
		}
		m.winIPC[t] = float64(dC) / float64(dCy)
		m.haveIPC[t] = true
		m.lastCommit[t] = arch.Committed
		m.lastCycle[t] = v.Cycle()
		m.nextEdge[t] = arch.Committed + m.cfg.Base.WindowSize
		m.closedThisTick = true
	}
}

// Tick implements amp.MoveScheduler: the Fig. 5 swap rules apply only in
// the baseline configuration (composition-based affinity is undefined
// while the cores are strong+weak).
func (m *Morphing) Tick(v amp.View) []amp.Move {
	m.observe(v)
	if m.morphed {
		return nil
	}
	return m.proposed.Tick(v)
}

// MorphTick implements amp.MorphPolicy.
func (m *Morphing) MorphTick(v amp.View) (amp.MorphAction, int) {
	if !m.closedThisTick || !m.haveIPC[0] || !m.haveIPC[1] {
		return amp.MorphNone, 0
	}
	if !m.morphed {
		low, high := -1, -1
		if m.winIPC[0] < m.cfg.LowIPC && m.winIPC[1] > m.cfg.HighIPC {
			low, high = 0, 1
		} else if m.winIPC[1] < m.cfg.LowIPC && m.winIPC[0] > m.cfg.HighIPC {
			low, high = 1, 0
		}
		if high < 0 {
			m.consecOn = 0
			return amp.MorphNone, 0
		}
		m.consecOn++
		if m.consecOn < m.cfg.ConsecWindows {
			return amp.MorphNone, 0
		}
		m.morphed = true
		m.strongThread = high
		m.morphStart = v.Cycle()
		m.consecOn = 0
		m.consecOff = 0
		m.morphOns++
		m.telOns.Inc()
		_ = low
		return amp.MorphOn, high
	}

	// Morphed: watch for the parked thread's recovery or the strong
	// thread cooling off.
	if v.Cycle()-m.morphStart < m.cfg.MinMorphCycles {
		return amp.MorphNone, 0
	}
	weak := 1 - m.strongThread
	recover := m.winIPC[weak] > m.cfg.LowIPC*m.cfg.RecoveryFactor ||
		m.winIPC[m.strongThread] < m.cfg.HighIPC/2
	if !recover {
		m.consecOff = 0
		return amp.MorphNone, 0
	}
	m.consecOff++
	if m.consecOff < m.cfg.ConsecWindows {
		return amp.MorphNone, 0
	}
	m.morphed = false
	m.consecOff = 0
	m.telOffs.Inc()
	return amp.MorphOff, 0
}

var _ amp.MoveScheduler = (*Morphing)(nil)
var _ amp.MorphPolicy = (*Morphing)(nil)
var _ amp.StatsReporter = (*Morphing)(nil)
