// Package sched implements the thread-to-core scheduling policies
// compared in the paper:
//
//   - Proposed: the fine-grained hardware scheme of §VI — composition
//     monitors over 1000-instruction commit windows, the Fig. 5
//     threshold rules, a 5-deep majority history vote, and a forced
//     fairness swap every 2 ms when both threads share a flavor.
//   - HPE: the coarse-grained estimation scheme of §V (Srinivasan et
//     al.), deciding once per 2 ms context switch from a profiled
//     IPC/Watt ratio matrix or regression surface.
//   - RoundRobin: unconditional swap every context-switch interval.
//   - Static: never swap (the baseline thread-to-core assignment).
//
// All schedulers implement amp.MoveScheduler and are driven by the AMP
// system's per-cycle Tick.
package sched

import (
	"ampsched/internal/amp"
	"ampsched/internal/monitor"
	"ampsched/internal/telemetry"
)

// ObserverInjectable is implemented by schedulers whose hardware
// monitors can be replaced — typically wrapped by a fault.Plan so the
// scheduler sees noisy, dropped or stale samples. SetObserver must be
// called before the scheduler's Reset (i.e. before amp.NewSystem); the
// factory is invoked once per thread, in thread order.
//
// Deprecated: pass WithObserverFactory to the scheduler constructor
// instead. The interface remains implemented for one release; a
// SetObserver call overrides a WithObserverFactory option.
type ObserverInjectable interface {
	SetObserver(factory func(window uint64) monitor.Observer)
}

// DefaultRetryBackoffCycles is the initial hold-off after a scheduler
// observes its swap request dropped by the reconfiguration controller.
const DefaultRetryBackoffCycles = 25_000

// retryState implements the retry-with-backoff contract of
// amp.View.SwapFailures: when the failure counter advances, the
// scheduler holds off further swap requests for an exponentially
// growing window (reset by the first successful swap) instead of
// hammering a controller that is refusing reconfigurations.
type retryState struct {
	base    uint64
	max     uint64
	backoff uint64 // current hold-off width; 0 when healthy
	until   uint64 // no requests before this cycle

	seenFailures uint64
	seenSwap     uint64
	failed       uint64 // total dropped requests observed

	// retries counts armed backoffs for telemetry (nil = disabled).
	// Assigned after reset, which zeroes the whole struct.
	retries *telemetry.Counter
}

// reset arms the state against the view's current counters.
func (r *retryState) reset(base, max uint64, v amp.View) {
	if base == 0 {
		base = DefaultRetryBackoffCycles
	}
	if max < base {
		max = base * 64
	}
	*r = retryState{base: base, max: max,
		seenFailures: v.SwapFailures(), seenSwap: v.LastSwapCycle()}
}

// observe folds in the view's swap counters; call once per decision
// point, before consulting holdoff.
func (r *retryState) observe(v amp.View) {
	if sc := v.LastSwapCycle(); sc != r.seenSwap {
		// A swap went through: the controller is healthy again.
		r.seenSwap = sc
		r.backoff = 0
		r.until = 0
	}
	if f := v.SwapFailures(); f != r.seenFailures {
		r.failed += f - r.seenFailures
		r.seenFailures = f
		r.retries.Inc()
		if r.backoff == 0 {
			r.backoff = r.base
		} else if r.backoff < r.max {
			r.backoff *= 2
			if r.backoff > r.max {
				r.backoff = r.max
			}
		}
		r.until = v.Cycle() + r.backoff
	}
}

// holdoff reports whether swap requests are currently suppressed.
func (r *retryState) holdoff(cycle uint64) bool { return cycle < r.until }

// coreIndexes returns (intCore, fpCore) by configuration name,
// defaulting to (0, 1) if the names are not the canonical "INT"/"FP".
func coreIndexes(v amp.View) (intCore, fpCore int) {
	intCore, fpCore = 0, 1
	for c := 0; c < 2; c++ {
		switch v.CoreConfig(c).Name {
		case "INT":
			intCore = c
		case "FP":
			fpCore = c
		}
	}
	if intCore == fpCore {
		// Degenerate naming; fall back to positional convention.
		intCore, fpCore = 0, 1
	}
	return intCore, fpCore
}

// swapEmitter renders a dual-core swap decision as the Move batch of
// the unified scheduler API. The two-element scratch buffer lives in
// the embedding policy, so emitting a swap allocates nothing.
type swapEmitter struct {
	buf [2]amp.Move
}

// swap returns the move batch that exchanges the two threads of a
// dual-core system.
//
//ampvet:hotpath
func (e *swapEmitter) swap(v amp.View) []amp.Move {
	e.buf[0] = amp.Move{Thread: v.ThreadOnCore(0), Core: 1}
	e.buf[1] = amp.Move{Thread: v.ThreadOnCore(1), Core: 0}
	return e.buf[:]
}

// Static is the no-op scheduler: the initial OS assignment is kept for
// the whole run.
type Static struct{}

// Name implements amp.MoveScheduler.
func (Static) Name() string { return "static" }

// Reset implements amp.MoveScheduler.
func (Static) Reset(amp.View) {}

// Tick implements amp.MoveScheduler.
func (Static) Tick(amp.View) []amp.Move { return nil }

var _ amp.MoveScheduler = Static{}
