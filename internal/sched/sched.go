// Package sched implements the thread-to-core scheduling policies
// compared in the paper:
//
//   - Proposed: the fine-grained hardware scheme of §VI — composition
//     monitors over 1000-instruction commit windows, the Fig. 5
//     threshold rules, a 5-deep majority history vote, and a forced
//     fairness swap every 2 ms when both threads share a flavor.
//   - HPE: the coarse-grained estimation scheme of §V (Srinivasan et
//     al.), deciding once per 2 ms context switch from a profiled
//     IPC/Watt ratio matrix or regression surface.
//   - RoundRobin: unconditional swap every context-switch interval.
//   - Static: never swap (the baseline thread-to-core assignment).
//
// All schedulers implement amp.Scheduler and are driven by the AMP
// system's per-cycle Tick.
package sched

import "ampsched/internal/amp"

// coreIndexes returns (intCore, fpCore) by configuration name,
// defaulting to (0, 1) if the names are not the canonical "INT"/"FP".
func coreIndexes(v amp.View) (intCore, fpCore int) {
	intCore, fpCore = 0, 1
	for c := 0; c < 2; c++ {
		switch v.CoreConfig(c).Name {
		case "INT":
			intCore = c
		case "FP":
			fpCore = c
		}
	}
	if intCore == fpCore {
		// Degenerate naming; fall back to positional convention.
		intCore, fpCore = 0, 1
	}
	return intCore, fpCore
}

// Static is the no-op scheduler: the initial OS assignment is kept for
// the whole run.
type Static struct{}

// Name implements amp.Scheduler.
func (Static) Name() string { return "static" }

// Reset implements amp.Scheduler.
func (Static) Reset(amp.View) {}

// Tick implements amp.Scheduler.
func (Static) Tick(amp.View) bool { return false }

var _ amp.Scheduler = Static{}
