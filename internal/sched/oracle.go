package sched

import (
	"fmt"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/workload"
)

// Oracle is a clairvoyant profile-driven scheduler: it knows, from
// exhaustive offline profiling, each thread's solo IPC/Watt on each
// core for every committed-instruction window, and at window
// boundaries places the pair in the mapping those profiles favor.
//
// Because the two cores of the paper's AMP share nothing (private L1s
// and L2s, no bandwidth contention in the model), solo profiles are
// exact co-run predictions for steady-state execution. What the
// clairvoyant does NOT know is migration cost — swap stalls, cold
// caches, predictor retraining — so on phase-flipping pairs it can
// over-swap and end up BELOW a cost-aware online scheme. That outcome
// is itself the §VI-C lesson: profile knowledge without cost modeling
// is not an upper bound.
type Oracle struct {
	window uint64
	// ipcw[thread][core][windowIdx]
	ipcw [2][2][]float64
	// hysteresis keeps the oracle from thrashing at near-ties.
	minGain float64

	lastDecision uint64
	stats        amp.SchedulerStats
	em           swapEmitter
	intCore      int
	fpCore       int
}

// OracleProfile runs the four solo profiling passes and builds the
// oracle. window is the decision granularity in committed
// instructions; limit bounds each profiling run.
func OracleProfile(intCfg, fpCfg *cpu.Config, benchA, benchB *workload.Benchmark,
	seedA, seedB, limit, window uint64) (*Oracle, error) {
	if window == 0 || limit == 0 {
		return nil, fmt.Errorf("sched: oracle: zero window or limit")
	}
	o := &Oracle{window: window, minGain: 1.10}
	cfgs := [2]*cpu.Config{intCfg, fpCfg}
	benches := [2]*workload.Benchmark{benchA, benchB}
	seeds := [2]uint64{seedA, seedB}
	for t := 0; t < 2; t++ {
		for c := 0; c < 2; c++ {
			res := amp.SoloRunWindows(cfgs[c], benches[t], seeds[t], limit, window)
			for _, s := range res.Samples {
				o.ipcw[t][c] = append(o.ipcw[t][c], s.IPCPerWatt)
			}
			if len(o.ipcw[t][c]) == 0 {
				return nil, fmt.Errorf("sched: oracle: no profile windows for %s on %s",
					benches[t].Name, cfgs[c].Name)
			}
		}
	}
	return o, nil
}

// Name implements amp.MoveScheduler.
func (o *Oracle) Name() string { return "oracle" }

// Reset implements amp.MoveScheduler.
func (o *Oracle) Reset(v amp.View) {
	o.intCore, o.fpCore = coreIndexes(v)
	o.lastDecision = 0
	o.stats = amp.SchedulerStats{}
}

// SchedStats implements amp.StatsReporter.
func (o *Oracle) SchedStats() amp.SchedulerStats { return o.stats }

// lookup returns thread t's profiled IPC/Watt on core flavor c (0 =
// INT, 1 = FP) at window w, clamping past the profile's end (the
// profile is one pass; runs wrap the workload the same way).
func (o *Oracle) lookup(t, c int, w uint64) float64 {
	prof := o.ipcw[t][c]
	return prof[int(w)%len(prof)]
}

// Tick implements amp.MoveScheduler. One decision per committed window of
// the faster thread.
func (o *Oracle) Tick(v amp.View) []amp.Move {
	// Decision epoch: the max of the two threads' window indexes.
	w0 := v.Arch(0).Committed / o.window
	w1 := v.Arch(1).Committed / o.window
	epoch := w0
	if w1 > epoch {
		epoch = w1
	}
	if epoch == o.lastDecision {
		return nil
	}
	o.lastDecision = epoch
	o.stats.DecisionPoints++

	// Value of the current mapping vs the swapped one.
	t0OnInt := v.CoreOfThread(0) == o.intCore
	var cur, alt float64
	if t0OnInt {
		cur = o.lookup(0, 0, w0) + o.lookup(1, 1, w1)
		alt = o.lookup(0, 1, w0) + o.lookup(1, 0, w1)
	} else {
		cur = o.lookup(0, 1, w0) + o.lookup(1, 0, w1)
		alt = o.lookup(0, 0, w0) + o.lookup(1, 1, w1)
	}
	if cur <= 0 {
		return nil
	}
	if alt/cur >= o.minGain {
		o.stats.SwapRequests++
		return o.em.swap(v)
	}
	return nil
}

var _ amp.MoveScheduler = (*Oracle)(nil)
var _ amp.StatsReporter = (*Oracle)(nil)
