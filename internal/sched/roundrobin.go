package sched

import (
	"fmt"

	"ampsched/internal/amp"
)

// RoundRobin unconditionally swaps the two threads every Interval
// cycles — the static reference scheme of §VII. The paper evaluates
// decision intervals of 1 and 2 context-switch periods and finds 1×
// (2 ms) better; NewRoundRobin takes the multiple so both can be run.
type RoundRobin struct {
	interval uint64
	next     uint64
	stats    amp.SchedulerStats
	tel      polTel
	em       swapEmitter
}

// NewRoundRobin returns a Round Robin scheduler swapping every
// multiple context-switch periods (multiple >= 1).
func NewRoundRobin(multiple int, opts ...Option) *RoundRobin {
	if multiple < 1 {
		panic(fmt.Sprintf("sched: roundrobin: invalid multiple %d", multiple))
	}
	return newRoundRobin(uint64(multiple)*amp.ContextSwitchCycles, opts)
}

// NewRoundRobinInterval returns a Round Robin scheduler with an
// explicit cycle interval (for tests and ablations).
func NewRoundRobinInterval(cycles uint64, opts ...Option) *RoundRobin {
	if cycles == 0 {
		panic("sched: roundrobin: zero interval")
	}
	return newRoundRobin(cycles, opts)
}

func newRoundRobin(interval uint64, opts []Option) *RoundRobin {
	o := buildOptions(opts)
	return &RoundRobin{interval: interval, tel: newPolTel(o.tel, "roundrobin")}
}

// Name implements amp.MoveScheduler.
func (r *RoundRobin) Name() string { return "roundrobin" }

// Interval returns the swap period in cycles.
func (r *RoundRobin) Interval() uint64 { return r.interval }

// Reset implements amp.MoveScheduler.
func (r *RoundRobin) Reset(v amp.View) {
	r.next = v.Cycle() + r.interval
	r.stats = amp.SchedulerStats{}
}

// SchedStats implements amp.StatsReporter.
func (r *RoundRobin) SchedStats() amp.SchedulerStats { return r.stats }

// Tick implements amp.MoveScheduler.
//
//ampvet:hotpath
func (r *RoundRobin) Tick(v amp.View) []amp.Move {
	if v.Cycle() < r.next {
		return nil
	}
	r.next = v.Cycle() + r.interval
	r.stats.DecisionPoints++
	r.tel.decisions.Inc()
	r.stats.SwapRequests++
	r.tel.requests.Inc()
	return r.em.swap(v)
}

var _ amp.MoveScheduler = (*RoundRobin)(nil)
var _ amp.StatsReporter = (*RoundRobin)(nil)
