package sched

import (
	"fmt"

	"ampsched/internal/amp"
)

// SamplingConfig parameterizes the sampling scheduler, the classic
// AMP policy of the related work (§II: Kumar et al. [3], Becchi &
// Crowley [10]): instead of predicting the other core's behavior, it
// periodically *tries* the swapped assignment, measures both
// configurations back to back, and keeps the better one.
type SamplingConfig struct {
	// Interval between sampling episodes, in cycles.
	Interval uint64
	// SampleLen is the length of each measurement half, in cycles.
	SampleLen uint64
	// KeepThreshold: the swapped configuration is kept when its
	// measured metric exceeds the incumbent's by this factor
	// (hysteresis against noise).
	KeepThreshold float64
}

// DefaultSamplingConfig returns a sampling policy with the same
// decision period as the other coarse-grain schemes.
func DefaultSamplingConfig() SamplingConfig {
	return SamplingConfig{
		Interval:      amp.ContextSwitchCycles,
		SampleLen:     amp.ContextSwitchCycles / 16,
		KeepThreshold: 1.02,
	}
}

// Validate reports the first problem with the configuration.
func (c *SamplingConfig) Validate() error {
	if c.Interval == 0 {
		return fmt.Errorf("sched: sampling: zero Interval")
	}
	if c.SampleLen == 0 {
		return fmt.Errorf("sched: sampling: zero SampleLen")
	}
	if 2*c.SampleLen >= c.Interval {
		return fmt.Errorf("sched: sampling: two samples (%d) do not fit in the interval (%d)",
			2*c.SampleLen, c.Interval)
	}
	if c.KeepThreshold <= 0 {
		return fmt.Errorf("sched: sampling: non-positive KeepThreshold")
	}
	return nil
}

// samplingPhase is the scheduler's state machine.
type samplingPhase uint8

const (
	phaseRun     samplingPhase = iota // normal execution
	phaseBase                         // measuring the incumbent assignment
	phaseSwapped                      // measuring the swapped assignment
)

// Sampling is the sample-and-keep-the-better scheduler. Each episode
// costs one swap to try the alternative and possibly one swap to go
// back, which is exactly the overhead the estimation-based schemes
// (HPE, proposed) were invented to avoid.
type Sampling struct {
	cfg SamplingConfig

	phase       samplingPhase
	episodeAt   uint64 // cycle the next episode starts
	phaseEnd    uint64
	baseMetric  float64
	measureFrom [2]measurePoint
	stats       amp.SchedulerStats
	tel         polTel
	em          swapEmitter
}

type measurePoint struct {
	committed uint64
	energy    float64
}

// NewSampling builds the scheduler. Options attach telemetry.
func NewSampling(cfg SamplingConfig, opts ...Option) *Sampling {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	o := buildOptions(opts)
	return &Sampling{cfg: cfg, tel: newPolTel(o.tel, "sampling")}
}

// Name implements amp.MoveScheduler.
func (s *Sampling) Name() string { return "sampling" }

// Reset implements amp.MoveScheduler.
func (s *Sampling) Reset(v amp.View) {
	s.phase = phaseRun
	s.episodeAt = v.Cycle() + s.cfg.Interval
	s.stats = amp.SchedulerStats{}
}

// SchedStats implements amp.StatsReporter.
func (s *Sampling) SchedStats() amp.SchedulerStats { return s.stats }

// snapshot records both threads' committed counts and energies.
func (s *Sampling) snapshot(v amp.View) [2]measurePoint {
	var m [2]measurePoint
	for t := 0; t < 2; t++ {
		m[t] = measurePoint{
			committed: v.Arch(t).Committed,
			energy:    v.ThreadEnergyNJ(t),
		}
	}
	return m
}

// metric scores an interval: the sum over threads of committed
// instructions per nanojoule — proportional to the summed IPC/Watt at
// fixed frequency, the paper's optimization target.
func (s *Sampling) metric(v amp.View, from [2]measurePoint) float64 {
	total := 0.0
	for t := 0; t < 2; t++ {
		dC := v.Arch(t).Committed - from[t].committed
		dE := v.ThreadEnergyNJ(t) - from[t].energy
		if dE <= 0 {
			return 0
		}
		total += float64(dC) / dE
	}
	return total
}

// Tick implements amp.MoveScheduler via the three-phase state machine:
// run -> measure incumbent -> swap, measure alternative -> keep better.
func (s *Sampling) Tick(v amp.View) []amp.Move {
	now := v.Cycle()
	switch s.phase {
	case phaseRun:
		if now < s.episodeAt {
			return nil
		}
		s.phase = phaseBase
		s.phaseEnd = now + s.cfg.SampleLen
		s.measureFrom = s.snapshot(v)
		return nil

	case phaseBase:
		if now < s.phaseEnd {
			return nil
		}
		s.baseMetric = s.metric(v, s.measureFrom)
		s.phase = phaseSwapped
		s.phaseEnd = now + s.cfg.SampleLen
		// The swap lands first; measurement restarts on the next tick
		// to exclude the stall window.
		s.measureFrom = s.snapshot(v)
		s.stats.DecisionPoints++
		s.tel.decisions.Inc()
		s.stats.SwapRequests++
		s.tel.requests.Inc()
		return s.em.swap(v)

	case phaseSwapped:
		if now < s.phaseEnd {
			return nil
		}
		swappedMetric := s.metric(v, s.measureFrom)
		s.phase = phaseRun
		s.episodeAt = now + s.cfg.Interval
		s.stats.DecisionPoints++
		s.tel.decisions.Inc()
		if swappedMetric >= s.baseMetric*s.cfg.KeepThreshold {
			// Keep the swapped assignment.
			return nil
		}
		// Revert.
		s.stats.SwapRequests++
		s.tel.requests.Inc()
		return s.em.swap(v)
	}
	return nil
}

var _ amp.MoveScheduler = (*Sampling)(nil)
var _ amp.StatsReporter = (*Sampling)(nil)
