package sched

import (
	"fmt"

	"ampsched/internal/amp"
	"ampsched/internal/monitor"
)

// ProposedConfig parameterizes the proposed dynamic thread scheduling
// scheme. The zero value is invalid; use DefaultProposedConfig for the
// paper's operating point (window 1000, history 5, thresholds of
// Fig. 5, forced swap every 2 ms).
type ProposedConfig struct {
	// WindowSize is the commit-window length in instructions over
	// which composition is measured (§VI-B sweeps 500/1000/2000).
	WindowSize uint64
	// HistoryDepth is the number of recent tentative decisions that
	// vote on a reconfiguration (§VI-B sweeps 5/10).
	HistoryDepth int
	// ForceInterval is the fairness-swap period of Fig. 5 step 3.
	ForceInterval uint64
	// Thresholds of Fig. 5 (percentages).
	IntHigh float64 // %INT on FP core at/above which it wants the INT core
	IntLow  float64 // %INT on INT core at/below which it can give it up
	FPHigh  float64 // %FP on INT core at/above which it wants the FP core
	FPLow   float64 // %FP on FP core at/below which it can give it up
	// DisableForcedSwap turns off Fig. 5 step 3 (ablation).
	DisableForcedSwap bool
	// RetryBackoffCycles is the initial hold-off after an observed
	// swap-request failure (fault injection); it doubles per
	// consecutive failure up to ForceInterval. 0 means
	// DefaultRetryBackoffCycles.
	RetryBackoffCycles uint64
}

// DefaultProposedConfig returns the paper's chosen operating point.
func DefaultProposedConfig() ProposedConfig {
	return ProposedConfig{
		WindowSize:    1000,
		HistoryDepth:  5,
		ForceInterval: amp.ContextSwitchCycles,
		IntHigh:       55,
		IntLow:        35,
		FPHigh:        20,
		FPLow:         7,
	}
}

// Validate reports the first problem with the configuration.
func (c *ProposedConfig) Validate() error {
	if c.WindowSize == 0 {
		return fmt.Errorf("sched: proposed: zero WindowSize")
	}
	if c.HistoryDepth <= 0 {
		return fmt.Errorf("sched: proposed: non-positive HistoryDepth %d", c.HistoryDepth)
	}
	if c.ForceInterval == 0 && !c.DisableForcedSwap {
		return fmt.Errorf("sched: proposed: zero ForceInterval with forced swap enabled")
	}
	for _, th := range []struct {
		name string
		v    float64
	}{{"IntHigh", c.IntHigh}, {"IntLow", c.IntLow}, {"FPHigh", c.FPHigh}, {"FPLow", c.FPLow}} {
		if th.v < 0 || th.v > 100 {
			return fmt.Errorf("sched: proposed: threshold %s=%g outside [0,100]", th.name, th.v)
		}
	}
	return nil
}

// Proposed is the paper's dynamic thread scheduling scheme: an online
// monitor (per-thread commit-window composition trackers) plus a
// performance predictor (threshold rules + majority history vote).
type Proposed struct {
	cfg        ProposedConfig
	obsFactory func(window uint64) monitor.Observer
	trackers   [2]monitor.Observer // indexed by thread
	// winTrk backs trackers when no observer factory replaces the
	// hardware monitors: value storage, re-Init'd per run, so a reset
	// allocates nothing.
	winTrk  [2]monitor.WindowTracker
	voter   monitor.Voter
	stats   amp.SchedulerStats
	retry   retryState
	tel     polTel
	em      swapEmitter
	intCore int
	fpCore  int
}

// NewProposed builds the scheduler; cfg is validated. Options attach
// telemetry (WithTelemetry) or replace the hardware monitors
// (WithObserverFactory).
func NewProposed(cfg ProposedConfig, opts ...Option) *Proposed {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	o := buildOptions(opts)
	return &Proposed{cfg: cfg, obsFactory: o.obsFactory, tel: newPolTel(o.tel, "proposed")}
}

// Name implements amp.MoveScheduler.
func (p *Proposed) Name() string { return "proposed" }

// Config returns the scheduler's configuration.
func (p *Proposed) Config() ProposedConfig { return p.cfg }

// SetObserver implements ObserverInjectable.
func (p *Proposed) SetObserver(factory func(window uint64) monitor.Observer) {
	p.obsFactory = factory
}

// Reset implements amp.MoveScheduler.
func (p *Proposed) Reset(v amp.View) {
	p.intCore, p.fpCore = coreIndexes(v)
	for t := 0; t < 2; t++ {
		if p.obsFactory != nil {
			p.trackers[t] = p.obsFactory(p.cfg.WindowSize)
		} else {
			p.winTrk[t].Init(p.cfg.WindowSize)
			p.trackers[t] = &p.winTrk[t]
		}
		p.trackers[t].Reset(v.Arch(t))
	}
	p.voter.Init(p.cfg.HistoryDepth)
	p.stats = amp.SchedulerStats{}
	p.retry.reset(p.cfg.RetryBackoffCycles, p.cfg.ForceInterval, v)
	p.retry.retries = p.tel.retries
}

// SchedStats implements amp.StatsReporter.
func (p *Proposed) SchedStats() amp.SchedulerStats {
	st := p.stats
	st.FailedRequests = p.retry.failed
	return st
}

// Tick implements amp.MoveScheduler. A tentative decision is made at
// the end of every committed-instruction window; the reconfiguration
// fires on a strict majority of the last HistoryDepth tentative
// decisions, or through the forced fairness swap of Fig. 5 step 3.
//
//ampvet:hotpath
func (p *Proposed) Tick(v amp.View) []amp.Move {
	closed := false
	for t := 0; t < 2; t++ {
		if s, ok := p.trackers[t].Observe(v.Arch(t)); ok {
			p.tel.window(v.Cycle(), t, s)
			closed = true
		}
	}
	if !closed {
		return nil
	}

	sFP, okFP := p.trackers[v.ThreadOnCore(p.fpCore)].Latest()
	sINT, okINT := p.trackers[v.ThreadOnCore(p.intCore)].Latest()
	if !okFP || !okINT {
		return nil // need one full window from each thread first
	}
	p.stats.DecisionPoints++
	p.tel.decisions.Inc()
	p.retry.observe(v)

	// Fig. 5 step 2: swap helps both threads. The majority vote keeps
	// accumulating during a failure hold-off, so the request re-fires
	// as soon as the backoff expires (retry, not abandonment).
	tentative := (sFP.IntPct >= p.cfg.IntHigh && sINT.IntPct <= p.cfg.IntLow) ||
		(sINT.FPPct >= p.cfg.FPHigh && sFP.FPPct <= p.cfg.FPLow)
	p.voter.Push(tentative)
	p.tel.vote(tentative)
	majority := p.voter.Majority()
	if p.retry.holdoff(v.Cycle()) {
		if majority {
			p.tel.holdoffs.Inc()
		}
		return nil
	}
	if majority {
		p.tel.majorityFires.Inc()
		p.requestSwap()
		return p.em.swap(v)
	}

	// Fig. 5 step 3: fairness swap when both threads share a flavor
	// and no swap has happened for a context-switch interval.
	if !p.cfg.DisableForcedSwap && v.Cycle()-v.LastSwapCycle() >= p.cfg.ForceInterval {
		forced := (sFP.IntPct >= p.cfg.IntHigh && sINT.IntPct >= p.cfg.IntHigh) ||
			(sINT.FPPct >= p.cfg.FPHigh && sFP.FPPct >= p.cfg.FPHigh)
		if forced {
			p.tel.forcedSwaps.Inc()
			p.requestSwap()
			return p.em.swap(v)
		}
	}
	return nil
}

func (p *Proposed) requestSwap() {
	p.stats.SwapRequests++
	p.tel.requests.Inc()
	p.voter.Clear()
}

var _ amp.MoveScheduler = (*Proposed)(nil)
var _ ObserverInjectable = (*Proposed)(nil)
