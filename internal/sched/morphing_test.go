package sched

import (
	"testing"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/workload"
)

func TestMorphConfigValidation(t *testing.T) {
	good := DefaultMorphConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*MorphConfig){
		func(c *MorphConfig) { c.LowIPC = 0 },
		func(c *MorphConfig) { c.HighIPC = c.LowIPC },
		func(c *MorphConfig) { c.ConsecWindows = 0 },
		func(c *MorphConfig) { c.RecoveryFactor = 1 },
		func(c *MorphConfig) { c.Base.WindowSize = 0 },
	}
	for i, mutate := range bads {
		c := DefaultMorphConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestNewMorphingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config accepted")
		}
	}()
	NewMorphing(MorphConfig{})
}

// driveMorph advances the fake view with fixed per-window IPCs and
// returns the first non-None action.
func driveMorph(m *Morphing, v *fakeView, windows int, ipc0, ipc1 float64) (amp.MorphAction, int) {
	for i := 0; i < windows; i++ {
		// Advance exactly one window for each thread: thread t
		// commits WindowSize instructions over WindowSize/ipc cycles.
		// Use thread 0's cycle advance as the global clock.
		v.cycle += uint64(float64(m.cfg.Base.WindowSize) / ipc0)
		v.commit(0, m.cfg.Base.WindowSize, 50, 0)
		v.commit(1, uint64(float64(m.cfg.Base.WindowSize)/ipc0*ipc1), 50, 0)
		m.Tick(v)
		if act, strong := m.MorphTick(v); act != amp.MorphNone {
			return act, strong
		}
	}
	return amp.MorphNone, 0
}

func TestMorphingTriggersOnAsymmetricUtility(t *testing.T) {
	v := newFakeView()
	cfg := DefaultMorphConfig()
	cfg.Base.DisableForcedSwap = true
	m := NewMorphing(cfg)
	m.Reset(v)
	// Thread 0 runs hot (IPC 1.0), thread 1 is collapsed (IPC 0.05).
	act, strong := driveMorph(m, v, 20, 1.0, 0.05)
	if act != amp.MorphOn {
		t.Fatal("morph never triggered")
	}
	if strong != 0 {
		t.Fatalf("wrong strong thread: %d", strong)
	}
	if m.MorphCount() != 1 {
		t.Fatalf("morph count %d", m.MorphCount())
	}
}

func TestMorphingNoTriggerWhenBothActive(t *testing.T) {
	v := newFakeView()
	cfg := DefaultMorphConfig()
	cfg.Base.DisableForcedSwap = true
	m := NewMorphing(cfg)
	m.Reset(v)
	if act, _ := driveMorph(m, v, 40, 0.8, 0.7); act != amp.MorphNone {
		t.Fatal("morphed with both threads active")
	}
	if act, _ := driveMorph(m, v, 40, 0.05, 0.06); act != amp.MorphNone {
		t.Fatal("morphed with both threads stalled")
	}
}

func TestMorphingUnmorphsOnRecovery(t *testing.T) {
	v := newFakeView()
	cfg := DefaultMorphConfig()
	cfg.Base.DisableForcedSwap = true
	cfg.MinMorphCycles = 1
	m := NewMorphing(cfg)
	m.Reset(v)
	if act, _ := driveMorph(m, v, 20, 1.0, 0.05); act != amp.MorphOn {
		t.Fatal("setup: no morph")
	}
	// Parked thread recovers.
	act, _ := driveMorph(m, v, 20, 1.0, 0.9)
	if act != amp.MorphOff {
		t.Fatal("never unmorphed after recovery")
	}
}

func TestMorphingSuppressesSwapRulesWhileMorphed(t *testing.T) {
	v := newFakeView()
	cfg := DefaultMorphConfig()
	cfg.Base.DisableForcedSwap = true
	cfg.MinMorphCycles = 1 << 62
	m := NewMorphing(cfg)
	m.Reset(v)
	if act, _ := driveMorph(m, v, 20, 1.0, 0.05); act != amp.MorphOn {
		t.Fatal("setup: no morph")
	}
	// Feed compositions that would normally fire rule 2; while
	// morphed, Tick must stay quiet.
	for i := 0; i < 20; i++ {
		v.cycle += 1000
		v.commit(0, 1000, 10, 60)
		v.commit(1, 1000, 70, 0)
		if len(m.Tick(v)) != 0 {
			t.Fatal("swap rule fired while morphed")
		}
	}
}

func TestMorphingEndToEnd(t *testing.T) {
	// memstress (collapsed IPC) + fpstress (hot): the policy should
	// morph and give fpstress the strong core, and the run completes
	// with sane metrics.
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultMorphConfig()
	m := NewMorphing(cfg)
	t0 := amp.NewThread(0, workload.MustByName("memstress"), 51, 0)
	t1 := amp.NewThread(1, workload.MustByName("fpstress"), 52, 1<<40)
	sys := amp.MustSystem(
		[2]*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()},
		[2]*amp.Thread{t0, t1}, m, amp.Config{})
	res := sys.MustRun(400_000)
	if res.Morphs == 0 {
		t.Fatal("policy never morphed on a collapsed+hot pair")
	}
	for i, tr := range res.Threads {
		if tr.IPCPerWatt <= 0 {
			t.Fatalf("thread %d IPC/Watt %g", i, tr.IPCPerWatt)
		}
	}
}
