package sched

import (
	"ampsched/internal/monitor"
	"ampsched/internal/telemetry"
)

// Option customizes a scheduler at construction. Every constructor in
// this package accepts trailing options; the zero-option call is the
// uninstrumented scheduler of earlier releases.
type Option func(*options)

type options struct {
	tel        *telemetry.Telemetry
	obsFactory func(window uint64) monitor.Observer
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	return o
}

// WithTelemetry publishes the scheduler's decision-making into t:
// per-policy counters (windows observed, decision points, votes,
// majority fires, forced swaps, retry backoffs, vetoes) under
// "sched.<policy>.*", and — when t has sinks — one "window" event per
// closed commit window. A nil t is ignored.
func WithTelemetry(t *telemetry.Telemetry) Option {
	return func(o *options) { o.tel = t }
}

// WithObserverFactory replaces the scheduler's hardware monitors, one
// observer per thread in thread order — the fault-injection seam. It
// replaces the deprecated ObserverInjectable.SetObserver method; a
// later SetObserver call still overrides it during the deprecation
// window.
func WithObserverFactory(f func(window uint64) monitor.Observer) Option {
	return func(o *options) { o.obsFactory = f }
}

// polTel holds one policy's resolved telemetry handles. The zero value
// (telemetry disabled) is fully functional: every handle is nil and
// every call a no-op, so policies publish unconditionally.
type polTel struct {
	t    *telemetry.Telemetry
	name string

	windows       *telemetry.Counter
	decisions     *telemetry.Counter
	votesSwap     *telemetry.Counter
	votesStay     *telemetry.Counter
	majorityFires *telemetry.Counter
	forcedSwaps   *telemetry.Counter
	requests      *telemetry.Counter
	holdoffs      *telemetry.Counter
	retries       *telemetry.Counter
	vetoes        *telemetry.Counter
}

// newPolTel resolves the policy's handle set ("sched.<policy>.*").
func newPolTel(t *telemetry.Telemetry, policy string) polTel {
	if t == nil {
		return polTel{}
	}
	p := "sched." + policy + "."
	return polTel{
		t:    t,
		name: policy,

		windows:       t.Counter(p + "windows"),
		decisions:     t.Counter(p + "decisions"),
		votesSwap:     t.Counter(p + "votes_swap"),
		votesStay:     t.Counter(p + "votes_stay"),
		majorityFires: t.Counter(p + "majority_fires"),
		forcedSwaps:   t.Counter(p + "forced_swaps"),
		requests:      t.Counter(p + "swap_requests"),
		holdoffs:      t.Counter(p + "backoff_holdoffs"),
		retries:       t.Counter(p + "retry_backoffs"),
		vetoes:        t.Counter(p + "vetoes"),
	}
}

// vote counts one tentative window decision.
//
//ampvet:hotpath
func (pt *polTel) vote(swap bool) {
	if swap {
		pt.votesSwap.Inc()
	} else {
		pt.votesStay.Inc()
	}
}

// window counts one closed commit window and, when the event stream is
// live, publishes its composition.
//
//ampvet:hotpath
func (pt *polTel) window(cycle uint64, thread int, s monitor.Sample) {
	pt.windows.Inc()
	if pt.t.Eventing() {
		e := telemetry.NewEvent("window")
		e.Cycle = cycle
		e.Thread = thread
		e.Sched = pt.name
		e.IntPct = s.IntPct
		e.FPPct = s.FPPct
		pt.t.Emit(e)
	}
}
