package sched

import (
	"fmt"

	"ampsched/internal/amp"
	"ampsched/internal/isa"
)

// Estimator predicts, for a thread with the observed instruction
// composition, the ratio of the IPC/Watt it would achieve on the INT
// core to the IPC/Watt it would achieve on the FP core. The matrix and
// regression estimators of §V (built by internal/profilegen) implement
// this; comparing the ratio to 1 says which core suits the thread.
type Estimator interface {
	Name() string
	RatioIntOverFP(intPct, fpPct float64) float64
}

// HPEConfig parameterizes the reference scheme.
type HPEConfig struct {
	// Interval between decisions, in cycles (2 ms context switch).
	Interval uint64
	// SpeedupThreshold: swap when the estimated weighted speedup of
	// the swapped configuration exceeds this (paper: 1.05).
	SpeedupThreshold float64
}

// DefaultHPEConfig returns the paper's HPE operating point.
func DefaultHPEConfig() HPEConfig {
	return HPEConfig{Interval: amp.ContextSwitchCycles, SpeedupThreshold: 1.05}
}

// Validate reports the first problem with the configuration.
func (c *HPEConfig) Validate() error {
	if c.Interval == 0 {
		return fmt.Errorf("sched: hpe: zero Interval")
	}
	if c.SpeedupThreshold <= 0 {
		return fmt.Errorf("sched: hpe: non-positive SpeedupThreshold %g", c.SpeedupThreshold)
	}
	return nil
}

// HPE is the Hardware-monitoring and Prediction Engine reference
// scheduler, extended per §V to flavor-asymmetric cores and the
// performance/watt objective.
type HPE struct {
	cfg  HPEConfig
	est  Estimator
	name string // "hpe-<estimator>", concatenated once at construction

	nextCheck uint64
	intCore   int
	fpCore    int

	lastCommitted [2]uint64
	lastClass     [2][isa.NumClasses]uint64
	lastEnergy    [2]float64
	lastCycle     uint64

	stats amp.SchedulerStats
	tel   polTel
	em    swapEmitter
}

// NewHPE builds the scheduler around an estimator. Options attach
// telemetry; WithObserverFactory is ignored (HPE reads interval
// deltas, not commit windows).
func NewHPE(cfg HPEConfig, est Estimator, opts ...Option) *HPE {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if est == nil {
		panic("sched: hpe: nil estimator")
	}
	o := buildOptions(opts)
	name := "hpe-" + est.Name()
	return &HPE{cfg: cfg, est: est, name: name, tel: newPolTel(o.tel, name)}
}

// Name implements amp.MoveScheduler.
func (h *HPE) Name() string { return h.name }

// Estimator returns the ratio estimator in use.
func (h *HPE) Estimator() Estimator { return h.est }

// Reset implements amp.MoveScheduler.
func (h *HPE) Reset(v amp.View) {
	h.intCore, h.fpCore = coreIndexes(v)
	h.nextCheck = v.Cycle() + h.cfg.Interval
	h.lastCycle = v.Cycle()
	for t := 0; t < 2; t++ {
		arch := v.Arch(t)
		arch.Sync()
		h.lastCommitted[t] = arch.Committed
		h.lastClass[t] = arch.CommittedByClass
		h.lastEnergy[t] = v.ThreadEnergyNJ(t)
	}
	h.stats = amp.SchedulerStats{}
}

// SchedStats implements amp.StatsReporter.
func (h *HPE) SchedStats() amp.SchedulerStats { return h.stats }

// intervalObservation summarizes one thread over the last interval.
type intervalObservation struct {
	committed  uint64
	intPct     float64
	fpPct      float64
	ipcPerWatt float64
	valid      bool
}

func (h *HPE) observe(v amp.View, t int, cycles uint64) intervalObservation {
	arch := v.Arch(t)
	arch.Sync()
	committed := arch.Committed - h.lastCommitted[t]
	energy := v.ThreadEnergyNJ(t) - h.lastEnergy[t]

	var intN, fpN uint64
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		d := arch.CommittedByClass[c] - h.lastClass[t][c]
		if c.IsInt() {
			intN += d
		} else if c.IsFP() {
			fpN += d
		}
	}

	ob := intervalObservation{committed: committed}
	if committed == 0 || energy <= 0 || cycles == 0 {
		return ob
	}
	ob.intPct = 100 * float64(intN) / float64(committed)
	ob.fpPct = 100 * float64(fpN) / float64(committed)
	ipc := float64(committed) / float64(cycles)
	seconds := float64(cycles) / (v.FreqGHz() * 1e9)
	watts := energy * 1e-9 / seconds
	ob.ipcPerWatt = ipc / watts
	ob.valid = true
	return ob
}

func (h *HPE) snapshot(v amp.View) {
	for t := 0; t < 2; t++ {
		arch := v.Arch(t)
		arch.Sync()
		h.lastCommitted[t] = arch.Committed
		h.lastClass[t] = arch.CommittedByClass
		h.lastEnergy[t] = v.ThreadEnergyNJ(t)
	}
	h.lastCycle = v.Cycle()
}

// Tick implements amp.MoveScheduler. Every Interval cycles it
// estimates each thread's IPC/Watt on the other core from the
// estimator's ratio and swaps when the predicted weighted speedup of
// the swapped configuration exceeds the threshold.
//
//ampvet:hotpath
func (h *HPE) Tick(v amp.View) []amp.Move {
	if v.Cycle() < h.nextCheck {
		return nil
	}
	h.nextCheck = v.Cycle() + h.cfg.Interval
	h.stats.DecisionPoints++
	h.tel.decisions.Inc()

	cycles := v.Cycle() - h.lastCycle
	var obs [2]intervalObservation
	for t := 0; t < 2; t++ {
		obs[t] = h.observe(v, t, cycles)
	}
	h.snapshot(v)
	if !obs[0].valid || !obs[1].valid {
		return nil
	}

	est := (h.predictedSpeedup(v, obs[0], 0) + h.predictedSpeedup(v, obs[1], 1)) / 2
	if est > h.cfg.SpeedupThreshold {
		h.stats.SwapRequests++
		h.tel.requests.Inc()
		return h.em.swap(v)
	}
	return nil
}

// predictedSpeedup is thread t's estimated IPC/Watt factor if moved to
// the other core, from the estimator's INT-over-FP ratio surface.
//
//ampvet:hotpath
func (h *HPE) predictedSpeedup(v amp.View, o intervalObservation, t int) float64 {
	r := h.est.RatioIntOverFP(o.intPct, o.fpPct)
	if r <= 0 {
		return 1
	}
	if v.CoreOfThread(t) == h.intCore {
		// Moving INT->FP changes IPC/Watt by 1/r.
		return 1 / r
	}
	return r
}

var _ amp.MoveScheduler = (*HPE)(nil)
var _ amp.StatsReporter = (*HPE)(nil)
var _ amp.StatsReporter = (*Proposed)(nil)
