package sched

import (
	"testing"

	"ampsched/internal/amp"
)

func TestSamplingConfigValidation(t *testing.T) {
	good := DefaultSamplingConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*SamplingConfig){
		func(c *SamplingConfig) { c.Interval = 0 },
		func(c *SamplingConfig) { c.SampleLen = 0 },
		func(c *SamplingConfig) { c.SampleLen = c.Interval }, // samples don't fit
		func(c *SamplingConfig) { c.KeepThreshold = 0 },
	}
	for i, mutate := range bads {
		c := DefaultSamplingConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestNewSamplingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config accepted")
		}
	}()
	NewSampling(SamplingConfig{})
}

// driveSampling advances the fake view with per-thread (commits,
// energy) rates per 1000 cycles and returns the cycles at which the
// scheduler requested swaps.
func driveSampling(s *Sampling, v *fakeView, cycles uint64,
	rate func(thread int, onCore int) (commits uint64, energy float64)) []uint64 {
	var swaps []uint64
	end := v.cycle + cycles
	for v.cycle < end {
		v.cycle += 1000
		for th := 0; th < 2; th++ {
			c, e := rate(th, v.CoreOfThread(th))
			v.commit(th, c, 50, 0)
			v.energy[th] += e
		}
		if len(s.Tick(v)) != 0 {
			swaps = append(swaps, v.cycle)
			v.swapBinding()
		}
	}
	return swaps
}

func TestSamplingTriesAlternativeEveryEpisode(t *testing.T) {
	v := newFakeView()
	cfg := SamplingConfig{Interval: 100_000, SampleLen: 10_000, KeepThreshold: 1.02}
	s := NewSampling(cfg)
	s.Reset(v)
	// Symmetric rates: the swapped configuration is never better, so
	// every episode costs two swaps (try + revert).
	swaps := driveSampling(s, v, 500_000, func(int, int) (uint64, float64) {
		return 500, 1000
	})
	// ~4-5 episodes in 500k cycles, 2 swaps each.
	if len(swaps) < 6 || len(swaps) > 12 {
		t.Fatalf("got %d swaps, want ~8-10 (try+revert per episode)", len(swaps))
	}
}

func TestSamplingKeepsBetterAssignment(t *testing.T) {
	v := newFakeView()
	cfg := SamplingConfig{Interval: 100_000, SampleLen: 10_000, KeepThreshold: 1.02}
	s := NewSampling(cfg)
	s.Reset(v)
	// Thread 0 is far better on core 1 and vice versa: once swapped,
	// the measured metric doubles and the swap is kept (one swap per
	// episode until stable... and once in the good assignment, trying
	// the bad one reverts, costing two swaps per later episode).
	rate := func(th, core int) (uint64, float64) {
		if (th == 0 && core == 1) || (th == 1 && core == 0) {
			return 1000, 1000 // good placement: 1 commit/nJ
		}
		return 400, 1000 // bad placement
	}
	swaps := driveSampling(s, v, 120_000, rate)
	if len(swaps) != 1 {
		t.Fatalf("first episode should keep the better assignment with exactly 1 swap, got %d", len(swaps))
	}
	// The system must now be in the good assignment.
	if v.CoreOfThread(0) != 1 {
		t.Fatal("better assignment not kept")
	}
}

func TestSamplingRevertsWorseAssignment(t *testing.T) {
	v := newFakeView()
	cfg := SamplingConfig{Interval: 100_000, SampleLen: 10_000, KeepThreshold: 1.02}
	s := NewSampling(cfg)
	s.Reset(v)
	rate := func(th, core int) (uint64, float64) {
		if th == core { // initial placement is already the good one
			return 1000, 1000
		}
		return 400, 1000
	}
	swaps := driveSampling(s, v, 120_000, rate)
	if len(swaps) != 2 {
		t.Fatalf("episode over a good incumbent should try and revert (2 swaps), got %d", len(swaps))
	}
	if v.CoreOfThread(0) != 0 {
		t.Fatal("did not revert to the good assignment")
	}
}

func TestSamplingStatsCount(t *testing.T) {
	v := newFakeView()
	cfg := SamplingConfig{Interval: 50_000, SampleLen: 5_000, KeepThreshold: 1.02}
	s := NewSampling(cfg)
	s.Reset(v)
	driveSampling(s, v, 300_000, func(int, int) (uint64, float64) { return 500, 1000 })
	st := s.SchedStats()
	if st.DecisionPoints == 0 || st.SwapRequests == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if st.SwapRequests > st.DecisionPoints {
		t.Fatalf("more swaps than decisions: %+v", st)
	}
}

func TestSamplingOnRealSystem(t *testing.T) {
	// End-to-end sanity on the real simulator: sampling converges to
	// the right assignment for a strongly-flavored pair.
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := SamplingConfig{Interval: 120_000, SampleLen: 15_000, KeepThreshold: 1.0}
	s := NewSampling(cfg)
	res := runRealPair(t, "fpstress", "intstress", s) // fpstress starts on INT core
	if res.Swaps == 0 {
		t.Fatal("sampling never swapped a misplaced pair")
	}
	// Both threads should end up with healthy IPC/Watt.
	for i, tr := range res.Threads {
		if tr.IPCPerWatt <= 0 {
			t.Fatalf("thread %d IPC/Watt %g", i, tr.IPCPerWatt)
		}
	}
}

// runRealPair is a helper shared by scheduler system tests.
func runRealPair(t *testing.T, a, b string, s amp.MoveScheduler) amp.Result {
	t.Helper()
	return runRealPairLimit(t, a, b, s, 400_000)
}
