package amp

import (
	"testing"

	"ampsched/internal/cpu"
	"ampsched/internal/workload"
)

func TestSoloRunBasics(t *testing.T) {
	b := workload.MustByName("bitcount")
	res := SoloRun(cpu.IntCoreConfig(), b, 1, 10_000, 0)
	if res.Committed < 10_000 {
		t.Fatalf("committed %d", res.Committed)
	}
	if res.IPC <= 0 || res.Watts <= 0 || res.IPCPerWatt <= 0 {
		t.Fatalf("metrics: %+v", res)
	}
	if res.Core != "INT" || res.Bench != "bitcount" {
		t.Fatalf("identity: %s %s", res.Core, res.Bench)
	}
	// No periodic sampling: exactly one closing sample.
	if len(res.Samples) != 1 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
}

func TestSoloRunCycleSampling(t *testing.T) {
	b := workload.MustByName("gcc")
	res := SoloRun(cpu.IntCoreConfig(), b, 2, 30_000, 10_000)
	if len(res.Samples) < 3 {
		t.Fatalf("too few samples: %d", len(res.Samples))
	}
	var total uint64
	for _, s := range res.Samples {
		total += s.Committed
		if s.IntPct < 0 || s.IntPct > 100 || s.FPPct < 0 || s.FPPct > 100 {
			t.Fatalf("bad composition: %+v", s)
		}
	}
	if total != res.Committed {
		t.Fatalf("samples cover %d commits, run committed %d", total, res.Committed)
	}
}

func TestSoloRunWindowSampling(t *testing.T) {
	b := workload.MustByName("apsi")
	res := SoloRunWindows(cpu.FPCoreConfig(), b, 3, 20_000, 1000)
	if len(res.Samples) < 19 {
		t.Fatalf("expected ~20 window samples, got %d", len(res.Samples))
	}
	// Window edges land within a commit-width of the nominal size, so
	// deltas wobble by a few instructions around 1000.
	for i, s := range res.Samples[:len(res.Samples)-1] {
		if s.Committed < 990 || s.Committed > 1010 {
			t.Fatalf("sample %d covers %d instructions, want ~1000", i, s.Committed)
		}
	}
}

func TestSoloRunWindowsAlignAcrossCores(t *testing.T) {
	// The same benchmark and seed must produce (nearly) identical
	// window boundaries on both cores, so per-window comparisons in
	// the rule derivation are meaningful.
	b := workload.MustByName("ffti")
	ri := SoloRunWindows(cpu.IntCoreConfig(), b, 4, 15_000, 1000)
	rf := SoloRunWindows(cpu.FPCoreConfig(), b, 4, 15_000, 1000)
	n := len(ri.Samples)
	if len(rf.Samples) < n {
		n = len(rf.Samples)
	}
	if n < 10 {
		t.Fatalf("too few aligned windows: %d", n)
	}
	for w := 0; w < n-1; w++ {
		di := ri.Samples[w].IntPct - rf.Samples[w].IntPct
		if di > 12 || di < -12 {
			t.Fatalf("window %d composition misaligned: %.1f vs %.1f",
				w, ri.Samples[w].IntPct, rf.Samples[w].IntPct)
		}
	}
}

func TestSoloRunWindowsZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window accepted")
		}
	}()
	SoloRunWindows(cpu.IntCoreConfig(), workload.MustByName("pi"), 1, 100, 0)
}

func TestSoloDeterminism(t *testing.T) {
	b := workload.MustByName("mcf")
	r1 := SoloRun(cpu.IntCoreConfig(), b, 5, 5_000, 0)
	r2 := SoloRun(cpu.IntCoreConfig(), b, 5, 5_000, 0)
	if r1.Cycles != r2.Cycles || r1.EnergyNJ != r2.EnergyNJ {
		t.Fatalf("solo runs nondeterministic: %d/%.3f vs %d/%.3f",
			r1.Cycles, r1.EnergyNJ, r2.Cycles, r2.EnergyNJ)
	}
}

func TestFig1Shape(t *testing.T) {
	// The motivating observation of the paper: FP-heavy workloads
	// achieve better IPC/Watt on the FP core, INT-heavy on the INT
	// core.
	if testing.Short() {
		t.Skip("short mode")
	}
	intCfg, fpCfg := cpu.IntCoreConfig(), cpu.FPCoreConfig()
	ratio := func(name string) float64 {
		b := workload.MustByName(name)
		ri := SoloRun(intCfg, b, 7, 100_000, 0)
		rf := SoloRun(fpCfg, b, 7, 100_000, 0)
		return ri.IPCPerWatt / rf.IPCPerWatt
	}
	if r := ratio("intstress"); r < 1.2 {
		t.Errorf("intstress INT/FP IPC-per-watt ratio %.2f, want > 1.2", r)
	}
	if r := ratio("CRC32"); r < 1.1 {
		t.Errorf("CRC32 ratio %.2f, want > 1.1", r)
	}
	if r := ratio("fpstress"); r > 0.85 {
		t.Errorf("fpstress ratio %.2f, want < 0.85", r)
	}
	if r := ratio("equake"); r > 0.95 {
		t.Errorf("equake ratio %.2f, want < 0.95", r)
	}
	if r := ratio("mcf"); r < 0.9 || r > 1.25 {
		t.Errorf("mcf ratio %.2f, want near parity", r)
	}
}
