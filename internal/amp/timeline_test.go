package amp

import (
	"testing"
)

func TestTimelineRecords(t *testing.T) {
	threads := newPair(t, "gcc", "equake", 91)
	s := &swapEvery{period: 30_000}
	sys := MustSystem(coreCfgs(), threads, s, Config{SwapOverheadCycles: 100})
	sys.EnableTimeline(20_000)
	res := sys.MustRun(60_000)

	pts := sys.Timeline()
	if len(pts) < 3 {
		t.Fatalf("timeline has %d points", len(pts))
	}
	var committed [2]uint64
	var swaps uint64
	for i, p := range pts {
		if i > 0 && p.EndCycle <= pts[i-1].EndCycle {
			t.Fatalf("timeline not monotonic at %d", i)
		}
		for th := 0; th < 2; th++ {
			committed[th] += p.Threads[th].Committed
			if p.Threads[th].Core != 0 && p.Threads[th].Core != 1 {
				t.Fatalf("bad core index %d", p.Threads[th].Core)
			}
			if p.Threads[th].IntPct < 0 || p.Threads[th].IntPct > 100 {
				t.Fatalf("bad IntPct %g", p.Threads[th].IntPct)
			}
		}
		if p.Threads[0].Core == p.Threads[1].Core {
			t.Fatal("both threads on the same core")
		}
		swaps += p.Swaps
	}
	// Timeline covers (almost) the whole run: the final partial
	// interval is not recorded.
	for th := 0; th < 2; th++ {
		if committed[th] > res.Threads[th].Committed {
			t.Fatalf("timeline commits exceed run commits for thread %d", th)
		}
		if committed[th] == 0 {
			t.Fatalf("timeline recorded no commits for thread %d", th)
		}
	}
	if swaps == 0 || swaps > res.Swaps {
		t.Fatalf("timeline swaps %d vs run swaps %d", swaps, res.Swaps)
	}
}

func TestTimelineDisabledByDefault(t *testing.T) {
	sys := MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 92), nil, Config{})
	sys.MustRun(5_000)
	if sys.Timeline() != nil {
		t.Fatal("timeline recorded without EnableTimeline")
	}
}

func TestTimelineZeroIntervalPanics(t *testing.T) {
	sys := MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 93), nil, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval accepted")
		}
	}()
	sys.EnableTimeline(0)
}

func TestTimelineTracksBindingChanges(t *testing.T) {
	threads := newPair(t, "gcc", "equake", 94)
	s := &swapEvery{period: 25_000}
	sys := MustSystem(coreCfgs(), threads, s, Config{SwapOverheadCycles: 100})
	sys.EnableTimeline(25_000)
	sys.MustRun(80_000)
	pts := sys.Timeline()
	changed := false
	for i := 1; i < len(pts); i++ {
		if pts[i].Threads[0].Core != pts[i-1].Threads[0].Core {
			changed = true
		}
	}
	if !changed {
		t.Fatal("timeline never observed a binding change despite periodic swaps")
	}
}
