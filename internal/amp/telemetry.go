package amp

import (
	"fmt"

	"ampsched/internal/cpu"
	"ampsched/internal/telemetry"
)

// telemetryHook bridges the System's event stream into a
// telemetry.Telemetry: counters and histograms for the amp layer,
// per-core activity gauges flushed at run end, and (when the telemetry
// has sinks) a structured event per system event. All metric handles
// are resolved once at construction, so steady-state publishing is a
// handful of atomic adds.
type telemetryHook struct {
	sys *System
	t   *telemetry.Telemetry

	runs           *telemetry.Counter
	swaps          *telemetry.Counter
	swapFailures   *telemetry.Counter
	swapsDelayed   *telemetry.Counter
	morphs         *telemetry.Counter
	watchdogResets *telemetry.Counter
	wedges         *telemetry.Counter
	cancels        *telemetry.Counter
	swapOverhead   *telemetry.Histogram

	// fidelity caches System.Fidelity() for event stamping; resolved
	// on first event because options (and thus this hook) are applied
	// before NewSystem builds the engines.
	fidelity string
	// lastEngine tracks per-core engine snapshots so the per-engine
	// cycle/commit counters advance by run deltas.
	lastEngine [2]cpu.EngineStats
}

func newTelemetryHook(s *System, t *telemetry.Telemetry) *telemetryHook {
	return &telemetryHook{
		sys:            s,
		t:              t,
		runs:           t.Counter("amp.runs"),
		swaps:          t.Counter("amp.swaps"),
		swapFailures:   t.Counter("amp.swap_failures"),
		swapsDelayed:   t.Counter("amp.swaps_delayed"),
		morphs:         t.Counter("amp.morphs"),
		watchdogResets: t.Counter("amp.watchdog_resets"),
		wedges:         t.Counter("amp.wedges"),
		cancels:        t.Counter("amp.cancels"),
		swapOverhead:   t.Histogram("amp.swap_overhead_cycles"),
	}
}

// Event implements Observer.
//
//ampvet:hotpath
func (h *telemetryHook) Event(e Event) {
	switch e.Kind {
	case EventRunStart:
		h.runs.Inc()
	case EventRunEnd:
		h.flushRunEnd()
	case EventSwap:
		h.swaps.Inc()
		h.swapOverhead.Observe(e.Overhead)
		if e.Delayed {
			h.swapsDelayed.Inc()
		}
	case EventSwapFailed:
		h.swapFailures.Inc()
	case EventMorphOn, EventMorphOff:
		h.morphs.Inc()
	case EventWatchdogReset:
		h.watchdogResets.Inc()
	case EventWedged:
		h.wedges.Inc()
	case EventCanceled:
		h.cancels.Inc()
	}
	if h.t.Eventing() && e.Kind != EventWatchdogReset {
		if h.fidelity == "" {
			h.fidelity = h.sys.Fidelity()
		}
		te := telemetry.NewEvent(e.Kind.String())
		te.Cycle = e.Cycle
		te.Value = float64(e.Overhead)
		te.Detail = e.Reason
		te.Fidelity = h.fidelity
		if e.Delayed {
			te.Detail = "delayed"
		}
		h.t.Emit(te)
	}
}

// flushRunEnd publishes the end-of-run state of the cpu layer: global
// cycle, per-core activity and per-thread commit/energy totals. Gauges
// (not counters) so repeated runs on one system overwrite rather than
// double-count.
func (h *telemetryHook) flushRunEnd() {
	s := h.sys
	h.t.Gauge("amp.cycles").Set(float64(s.cycle))
	for c := 0; c < 2; c++ {
		st := s.engines[c].Stats()
		act := st.Act
		prefix := fmt.Sprintf("cpu.core%d.", c)
		h.t.Gauge(prefix + "active_cycles").Set(float64(act.Cycles))
		h.t.Gauge(prefix + "stall_cycles").Set(float64(act.StallCycles))
		h.t.Gauge(prefix + "fetched_ops").Set(float64(act.FetchedOps))
		h.t.Gauge(prefix + "exec_ops").Set(float64(act.TotalOps()))
		h.t.Gauge(prefix + "squashed_ops").Set(float64(act.Squashed))

		// Per-engine fidelity-labeled counters: cycles simulated and
		// instructions committed by this engine, summed across runs.
		d := st.Sub(h.lastEngine[c])
		h.lastEngine[c] = st
		enginePrefix := "engine." + s.engines[c].Fidelity() + "."
		h.t.Counter(enginePrefix + "cycles").Add(d.Act.Cycles + d.Act.StallCycles)
		h.t.Counter(enginePrefix + "commits").Add(d.Committed)
	}
	for i := 0; i < 2; i++ {
		th := s.threads[i]
		prefix := fmt.Sprintf("amp.thread%d.", i)
		h.t.Gauge(prefix + "committed").Set(float64(th.Arch.Committed))
		h.t.Gauge(prefix + "energy_nj").Set(th.EnergyNJ)
		h.t.Gauge(prefix + "int_pct").Set(th.Arch.IntPct())
		h.t.Gauge(prefix + "fp_pct").Set(th.Arch.FPPct())
	}
}

var _ Observer = (*telemetryHook)(nil)
