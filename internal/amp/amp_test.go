package amp

import (
	"errors"
	"testing"

	"ampsched/internal/cpu"
	"ampsched/internal/power"
	"ampsched/internal/workload"
)

func newPair(t *testing.T, a, b string, seed uint64) [2]*Thread {
	t.Helper()
	ba, err := workload.ByName(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := workload.ByName(b)
	if err != nil {
		t.Fatal(err)
	}
	return [2]*Thread{
		NewThread(0, ba, seed, 0),
		NewThread(1, bb, seed+1, 1<<40),
	}
}

func coreCfgs() [2]*cpu.Config {
	return [2]*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()}
}

// swapEvery is a test scheduler that swaps at a fixed cycle period.
type swapEvery struct {
	period uint64
	next   uint64
	buf    [2]Move
}

func (s *swapEvery) Name() string { return "swapEvery" }
func (s *swapEvery) Reset(v View) { s.next = v.Cycle() + s.period }
func (s *swapEvery) Tick(v View) []Move {
	if v.Cycle() < s.next {
		return nil
	}
	s.next = v.Cycle() + s.period
	s.buf[0] = Move{Thread: v.ThreadOnCore(0), Core: 1}
	s.buf[1] = Move{Thread: v.ThreadOnCore(1), Core: 0}
	return s.buf[:]
}

func TestRunReachesLimit(t *testing.T) {
	sys := MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 1), nil, Config{})
	res := sys.MustRun(20_000)
	if res.Threads[0].Committed < 20_000 && res.Threads[1].Committed < 20_000 {
		t.Fatalf("neither thread reached the limit: %+v", res)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles elapsed")
	}
	if res.Scheduler != "static" {
		t.Fatalf("nil scheduler reported as %q", res.Scheduler)
	}
}

func TestResultMetricsPositive(t *testing.T) {
	sys := MustSystem(coreCfgs(), newPair(t, "bitcount", "fpstress", 2), nil, Config{})
	res := sys.MustRun(20_000)
	for i, tr := range res.Threads {
		if tr.IPC <= 0 || tr.Watts <= 0 || tr.IPCPerWatt <= 0 || tr.EnergyNJ <= 0 {
			t.Fatalf("thread %d metrics: %+v", i, tr)
		}
	}
	if res.Threads[0].IntPct < 30 {
		t.Fatalf("bitcount IntPct %.1f too low", res.Threads[0].IntPct)
	}
	if res.Threads[1].FPPct < 30 {
		t.Fatalf("fpstress FPPct %.1f too low", res.Threads[1].FPPct)
	}
}

func TestDeterministicRuns(t *testing.T) {
	r1 := MustSystem(coreCfgs(), newPair(t, "gcc", "ammp", 3), &swapEvery{period: 5000}, Config{}).MustRun(15_000)
	r2 := MustSystem(coreCfgs(), newPair(t, "gcc", "ammp", 3), &swapEvery{period: 5000}, Config{}).MustRun(15_000)
	if r1.Cycles != r2.Cycles || r1.Swaps != r2.Swaps {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d cycles/swaps", r1.Cycles, r1.Swaps, r2.Cycles, r2.Swaps)
	}
	for i := 0; i < 2; i++ {
		if r1.Threads[i].Committed != r2.Threads[i].Committed ||
			r1.Threads[i].EnergyNJ != r2.Threads[i].EnergyNJ {
			t.Fatalf("thread %d differs", i)
		}
	}
}

func TestSwapExchangesBinding(t *testing.T) {
	threads := newPair(t, "gcc", "equake", 4)
	s := &swapEvery{period: 3000}
	sys := MustSystem(coreCfgs(), threads, s, Config{})
	if sys.ThreadOnCore(0) != 0 || sys.ThreadOnCore(1) != 1 {
		t.Fatal("initial binding wrong")
	}
	res := sys.MustRun(10_000)
	if res.Swaps == 0 {
		t.Fatal("no swaps happened")
	}
	if res.Swaps%2 == 1 {
		if sys.ThreadOnCore(0) != 1 || sys.ThreadOnCore(1) != 0 {
			t.Fatal("odd swap count but binding not exchanged")
		}
	}
	if sys.CoreOfThread(sys.ThreadOnCore(0)) != 0 {
		t.Fatal("CoreOfThread inconsistent with ThreadOnCore")
	}
}

func TestSwapOverheadStalls(t *testing.T) {
	// More swaps with a big overhead must burn more cycles for the
	// same work.
	mk := func(overhead uint64) Result {
		return MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 5),
			&swapEvery{period: 4000}, Config{SwapOverheadCycles: overhead}).MustRun(15_000)
	}
	cheap := mk(1)
	costly := mk(2000)
	if costly.Cycles <= cheap.Cycles {
		t.Fatalf("overhead did not slow the run: %d vs %d cycles", costly.Cycles, cheap.Cycles)
	}
	if cheap.Swaps == 0 {
		t.Fatal("no swaps in baseline")
	}
}

func TestStallCyclesRecorded(t *testing.T) {
	sys := MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 6),
		&swapEvery{period: 4000}, Config{SwapOverheadCycles: 1000})
	res := sys.MustRun(12_000)
	if res.Swaps == 0 {
		t.Skip("no swaps, nothing to verify")
	}
	act := sys.Core(0).Activity()
	// The final swap's stall window may be truncated by the end of
	// the run, so allow one partial window.
	if act.StallCycles < (res.Swaps-1)*1000 {
		t.Fatalf("stall cycles %d < (swaps-1) %d * overhead", act.StallCycles, res.Swaps-1)
	}
}

func TestEnergyAttributionSums(t *testing.T) {
	// Total thread energy must equal total core energy (nothing is
	// lost or double counted by migration accounting).
	threads := newPair(t, "apsi", "gzip", 7)
	s := &swapEvery{period: 3000}
	sys := MustSystem(coreCfgs(), threads, s, Config{})
	res := sys.MustRun(15_000)
	_ = res
	var coreTotal float64
	for c := 0; c < 2; c++ {
		// Recompute each core's total energy from scratch.
		coreTotal += sys.models[c].EnergyNJ(sys.Core(c).Activity(), power.SnapshotCaches(sys.Core(c)))
	}
	threadTotal := threads[0].EnergyNJ + threads[1].EnergyNJ
	rel := (threadTotal - coreTotal) / coreTotal
	if rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("energy mismatch: threads %.3f vs cores %.3f nJ", threadTotal, coreTotal)
	}
}

func TestViewAccessors(t *testing.T) {
	threads := newPair(t, "gcc", "equake", 8)
	sys := MustSystem(coreCfgs(), threads, nil, Config{})
	if sys.CoreConfig(0).Name != "INT" || sys.CoreConfig(1).Name != "FP" {
		t.Fatal("core configs misplaced")
	}
	if sys.FreqGHz() != 2.0 {
		t.Fatal("frequency wrong")
	}
	if sys.Arch(0) != &threads[0].Arch {
		t.Fatal("Arch accessor wrong")
	}
	if sys.LastSwapCycle() != 0 {
		t.Fatal("LastSwapCycle nonzero before any swap")
	}
	sys.MustRun(3000)
	if e := sys.ThreadEnergyNJ(0); e <= 0 {
		t.Fatal("thread energy not flushed")
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(coreCfgs(), [2]*Thread{nil, nil}, nil, Config{}); err == nil {
		t.Fatal("nil threads accepted")
	}
	if _, err := NewSystem([2]*cpu.Config{nil, nil}, newPair(t, "gcc", "equake", 8), nil, Config{}); err == nil {
		t.Fatal("nil core configs accepted")
	}
	bad := []Config{
		{SwapOverheadCycles: MaxOverheadCycles + 1},
		{MorphOverheadCycles: MaxOverheadCycles + 1},
		{SwapOverheadCycles: 5000, CycleBudget: 5000},
		{CycleBudget: 500}, // default overhead 1000 exceeds the budget
	}
	for i, cfg := range bad {
		if _, err := NewSystem(coreCfgs(), newPair(t, "gcc", "equake", 8), nil, cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

// failEvery drops every nth swap request (counting from the first);
// n == 0 never drops.
type failEvery struct {
	n     uint64
	seen  uint64
	delay float64 // OverheadFactor applied to surviving swaps
}

func (f *failEvery) SwapOutcome(cycle uint64) SwapOutcome {
	f.seen++
	if f.n > 0 && f.seen%f.n == 1 {
		return SwapOutcome{Fail: true}
	}
	return SwapOutcome{OverheadFactor: f.delay}
}

func TestSwapInjectorDropsRequests(t *testing.T) {
	inj := &failEvery{n: 2}
	s := &swapEvery{period: 2500}
	sys := MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 11), s,
		Config{SwapOverheadCycles: 100}, WithFaultPlan(inj))
	res := sys.MustRun(12_000)
	if res.FailedSwaps == 0 {
		t.Fatal("injector never dropped a swap")
	}
	if res.Swaps == 0 {
		t.Fatal("every swap dropped despite 50% fail rate")
	}
	if res.FailedSwaps != sys.SwapFailures() {
		t.Fatalf("Result.FailedSwaps %d != View.SwapFailures %d",
			res.FailedSwaps, sys.SwapFailures())
	}
	if res.Swaps+res.FailedSwaps != inj.seen {
		t.Fatalf("swaps %d + failures %d != requests %d",
			res.Swaps, res.FailedSwaps, inj.seen)
	}
}

func TestSwapInjectorDelayMultipliesOverhead(t *testing.T) {
	mk := func(delay float64) Result {
		return MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 12),
			&swapEvery{period: 4000},
			Config{SwapOverheadCycles: 500},
			WithFaultPlan(&failEvery{delay: delay})).MustRun(15_000)
	}
	prompt := mk(1)
	delayed := mk(4) // 2000-cycle stalls, still below the 4000-cycle period
	if prompt.Swaps == 0 {
		t.Fatal("no swaps in baseline")
	}
	if delayed.Cycles <= prompt.Cycles {
		t.Fatalf("delayed reconfiguration did not slow the run: %d vs %d cycles",
			delayed.Cycles, prompt.Cycles)
	}
}

func TestCycleBudgetReturnsWedged(t *testing.T) {
	sys := MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 13), nil,
		Config{SwapOverheadCycles: 1, CycleBudget: 2000})
	res, err := sys.Run(1 << 40) // far beyond the budget
	if err == nil {
		t.Fatal("budget overrun not reported")
	}
	if !errors.Is(err, ErrWedged) {
		t.Fatalf("error %v does not match ErrWedged", err)
	}
	var we *WedgedError
	if !errors.As(err, &we) {
		t.Fatalf("error %T is not a *WedgedError", err)
	}
	if we.Reason != "cycle budget exhausted" || we.Window != 2000 {
		t.Fatalf("unexpected wedge: %+v", we)
	}
	if res.Cycles < 2000 || res.Threads[0].Committed == 0 {
		t.Fatalf("partial result missing: %+v", res)
	}
}

func TestWatchdogReturnsWedged(t *testing.T) {
	// An injector-free system with a swap overhead that keeps the cores
	// frozen cannot be built (overhead validated against the budget),
	// so wedge via an injector whose delay stretches one swap past the
	// watchdog window.
	sys := MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 14),
		&swapEvery{period: 1000},
		Config{SwapOverheadCycles: 10, WatchdogCycles: 5_000},
		WithFaultPlan(&failEvery{delay: 100_000}))
	_, err := sys.Run(1 << 40)
	if !errors.Is(err, ErrWedged) {
		t.Fatalf("watchdog did not fire: %v", err)
	}
	var we *WedgedError
	if !errors.As(err, &we) || we.Reason != "no commit progress" {
		t.Fatalf("unexpected wedge: %v", err)
	}
}

func TestDefaultSwapOverheadApplied(t *testing.T) {
	sys := MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 9), nil, Config{})
	if sys.cfg.SwapOverheadCycles != DefaultSwapOverheadCycles {
		t.Fatalf("default overhead = %d", sys.cfg.SwapOverheadCycles)
	}
}

func TestNewThreadGeometry(t *testing.T) {
	b := workload.MustByName("gcc")
	th := NewThread(1, b, 42, 1<<40)
	if th.Arch.CodeSize != b.EffectiveCodeFootprint() {
		t.Fatal("code size not set")
	}
	if th.Arch.CodeBase <= 1<<40 {
		t.Fatal("code base not offset from data base")
	}
	if th.Name != "gcc" {
		t.Fatal("thread name wrong")
	}
}

func TestSwapCountsMatchScheduler(t *testing.T) {
	s := &swapEvery{period: 2500}
	sys := MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 10), s, Config{SwapOverheadCycles: 100})
	res := sys.MustRun(12_000)
	// Roughly cycles/period swaps, modulo stall windows.
	if res.Swaps == 0 {
		t.Fatal("scheduler requests ignored")
	}
	maxExpected := res.Cycles/2500 + 1
	if res.Swaps > maxExpected {
		t.Fatalf("swaps %d exceed request rate bound %d", res.Swaps, maxExpected)
	}
}
