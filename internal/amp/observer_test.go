package amp

import (
	"context"
	"errors"
	"testing"

	"ampsched/internal/telemetry"
)

// recordObserver keeps every event it sees.
type recordObserver struct {
	events []Event
}

func (r *recordObserver) Event(e Event) { r.events = append(r.events, e) }

func (r *recordObserver) count(k EventKind) int {
	n := 0
	for _, e := range r.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

func TestWithObserverSeesSwaps(t *testing.T) {
	rec := &recordObserver{}
	sys := MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 21),
		&swapEvery{period: 5000}, Config{SwapOverheadCycles: 100},
		WithObserver(rec))
	res := sys.MustRun(60_000)

	if rec.count(EventRunStart) != 1 || rec.count(EventRunEnd) != 1 {
		t.Errorf("run_start/run_end = %d/%d, want 1/1",
			rec.count(EventRunStart), rec.count(EventRunEnd))
	}
	if got := rec.count(EventSwap); uint64(got) != res.Swaps {
		t.Errorf("observer saw %d swaps, result says %d", got, res.Swaps)
	}
	if res.Swaps == 0 {
		t.Fatal("expected at least one swap")
	}
	// Events are ordered, first is run_start, last is run_end, and
	// every swap event carries the post-swap binding and the overhead.
	if rec.events[0].Kind != EventRunStart || rec.events[len(rec.events)-1].Kind != EventRunEnd {
		t.Error("events not bracketed by run_start/run_end")
	}
	want := [2]int{0, 1}
	for _, e := range rec.events {
		if e.Kind != EventSwap {
			continue
		}
		want[0], want[1] = want[1], want[0]
		if e.ThreadOnCore != want {
			t.Fatalf("swap event binding = %v, want %v", e.ThreadOnCore, want)
		}
		if e.Overhead != 100 || e.Delayed {
			t.Fatalf("swap event overhead/delayed = %d/%v", e.Overhead, e.Delayed)
		}
	}
}

// failInjector drops every swap.
type failInjector struct{}

func (failInjector) SwapOutcome(uint64) SwapOutcome { return SwapOutcome{Fail: true} }

func TestWithFaultPlanOption(t *testing.T) {
	rec := &recordObserver{}
	sys := MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 22),
		&swapEvery{period: 5000}, Config{},
		WithFaultPlan(failInjector{}), WithObserver(rec))
	res := sys.MustRun(60_000)
	if res.Swaps != 0 {
		t.Errorf("swaps = %d, want 0 (injector drops everything)", res.Swaps)
	}
	if res.FailedSwaps == 0 {
		t.Error("no failed swaps recorded")
	}
	if got := rec.count(EventSwapFailed); uint64(got) != res.FailedSwaps {
		t.Errorf("observer saw %d swap_failed, result says %d", got, res.FailedSwaps)
	}
}

// passInjector lets every swap through (marker for precedence test).
type passInjector struct{ calls int }

func (p *passInjector) SwapOutcome(uint64) SwapOutcome { p.calls++; return SwapOutcome{} }

// TestWithFaultPlanPrecedenceOverConfigField is the designated shim
// regression test: the one audited in-repo use of the deprecated
// Config.SwapInjector field, kept so the precedence contract holds
// until the shim is deleted.
func TestWithFaultPlanPrecedenceOverConfigField(t *testing.T) {
	deprecated := &passInjector{}
	preferred := &passInjector{}
	sys := MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 23),
		&swapEvery{period: 5000},
		Config{SwapInjector: deprecated}, //ampvet:allow deprecatedapi designated shim regression test
		WithFaultPlan(preferred))
	sys.MustRun(40_000)
	if preferred.calls == 0 {
		t.Error("WithFaultPlan injector never consulted")
	}
	if deprecated.calls != 0 {
		t.Error("deprecated Config.SwapInjector consulted despite WithFaultPlan")
	}
}

func TestWithTelemetryMetrics(t *testing.T) {
	tel := telemetry.New()
	sys := MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 24),
		&swapEvery{period: 5000}, Config{SwapOverheadCycles: 100},
		WithTelemetry(tel))
	res := sys.MustRun(60_000)

	reg := tel.Registry()
	if got := reg.Counter("amp.swaps").Value(); got != res.Swaps {
		t.Errorf("amp.swaps = %d, want %d", got, res.Swaps)
	}
	if got := reg.Counter("amp.runs").Value(); got != 1 {
		t.Errorf("amp.runs = %d, want 1", got)
	}
	if h := reg.Histogram("amp.swap_overhead_cycles"); h.Count() != res.Swaps {
		t.Errorf("overhead histogram count = %d, want %d", h.Count(), res.Swaps)
	}
	if got := reg.Gauge("amp.cycles").Value(); got != float64(res.Cycles) {
		t.Errorf("amp.cycles gauge = %g, want %d", got, res.Cycles)
	}
	if reg.Gauge("amp.thread0.committed").Value() <= 0 {
		t.Error("thread0 committed gauge not flushed")
	}
	if reg.Gauge("cpu.core0.active_cycles").Value() <= 0 {
		t.Error("core0 activity gauge not flushed")
	}
}

func TestWithTelemetryEventStream(t *testing.T) {
	var events []telemetry.Event
	sink := sinkFunc(func(e telemetry.Event) { events = append(events, e) })
	tel := telemetry.New(sink)
	sys := MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 25),
		&swapEvery{period: 5000}, Config{SwapOverheadCycles: 100},
		WithTelemetry(tel))
	res := sys.MustRun(60_000)

	var swaps int
	for _, e := range events {
		if e.Kind == "swap" {
			swaps++
		}
	}
	if uint64(swaps) != res.Swaps {
		t.Errorf("sink saw %d swap events, want %d", swaps, res.Swaps)
	}
}

// sinkFunc adapts a function to telemetry.Sink.
type sinkFunc func(telemetry.Event)

func (f sinkFunc) Emit(e telemetry.Event) { f(e) }
func (f sinkFunc) Close() error           { return nil }

func TestMultiObserverComposition(t *testing.T) {
	a, b := &recordObserver{}, &recordObserver{}
	sys := MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 26),
		&swapEvery{period: 5000}, Config{},
		WithObserver(a), WithObserver(b))
	sys.MustRun(30_000)
	if len(a.events) == 0 || len(a.events) != len(b.events) {
		t.Errorf("observer fan-out mismatch: %d vs %d events", len(a.events), len(b.events))
	}
	if MultiObserver() != nil {
		t.Error("MultiObserver() should collapse to nil")
	}
	if MultiObserver(nil, a) != Observer(a) {
		t.Error("MultiObserver(nil, a) should unwrap to a")
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the run must stop at the first check
	rec := &recordObserver{}
	sys := MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 27), nil, Config{},
		WithObserver(rec))
	res, err := sys.RunContext(ctx, 1_000_000_000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrWedged) {
		t.Error("cancellation must not look like a wedge")
	}
	// The partial result is still populated and bounded by the check
	// granularity.
	if res.Cycles == 0 || res.Cycles > 2*(ctxCheckMask+1) {
		t.Errorf("canceled run stopped after %d cycles", res.Cycles)
	}
	if rec.count(EventCanceled) != 1 || rec.count(EventRunEnd) != 1 {
		t.Errorf("canceled/run_end events = %d/%d, want 1/1",
			rec.count(EventCanceled), rec.count(EventRunEnd))
	}
}

func TestRunContextUncancelableMatchesRun(t *testing.T) {
	mk := func() *System {
		return MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 28),
			&swapEvery{period: 5000}, Config{})
	}
	r1 := mk().MustRun(50_000)
	r2, err := mk().RunContext(context.Background(), 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Swaps != r2.Swaps {
		t.Errorf("RunContext(Background) diverged from Run: %+v vs %+v", r1, r2)
	}
}
