package amp

import (
	"fmt"

	"ampsched/internal/cpu"
	"ampsched/internal/isa"
	"ampsched/internal/power"
	"ampsched/internal/workload"
)

// SoloSample is one profiling observation: the interval's committed
// instruction composition and achieved IPC/Watt, exactly the tuple the
// HPE profiling step of §V collects every 2 ms (cycle sampling) and
// the rule-derivation experiment of §VI-A collects per committed
// window (instruction sampling).
type SoloSample struct {
	EndCycle uint64 //ampvet:unit cycles
	// Committed in this interval.
	Committed  uint64 //ampvet:unit instructions
	IntPct     float64
	FPPct      float64
	IPC        float64 //ampvet:unit ipc
	Watts      float64 //ampvet:unit watts
	IPCPerWatt float64 //ampvet:unit ipc_per_watt
}

// SoloResult summarizes a single-thread, single-core run.
type SoloResult struct {
	Core       string
	Bench      string
	Cycles     uint64  //ampvet:unit cycles
	Committed  uint64  //ampvet:unit instructions
	EnergyNJ   float64 //ampvet:unit nanojoules
	IPC        float64 //ampvet:unit ipc
	Watts      float64 //ampvet:unit watts
	IPCPerWatt float64 //ampvet:unit ipc_per_watt
	Samples    []SoloSample
}

// SoloRun executes bench alone on a core built from coreCfg until
// limit instructions commit, recording a SoloSample every sampleCycles
// cycles (0 disables periodic sampling; a final sample always closes
// the run).
func SoloRun(coreCfg *cpu.Config, bench *workload.Benchmark, seed, limit, sampleCycles uint64) SoloResult {
	return soloRun(nil, coreCfg, bench, seed, limit, sampleCycles, 0)
}

// SoloRunEngine is SoloRun at a selectable simulation fidelity: the
// core is built by factory (nil means cpu.DetailedFactory, making
// this a superset of SoloRun). The cross-engine equivalence suite
// compares SoloRun against SoloRunEngine(interval.Factory(), ...).
func SoloRunEngine(factory cpu.EngineFactory, coreCfg *cpu.Config, bench *workload.Benchmark, seed, limit, sampleCycles uint64) SoloResult {
	return soloRun(factory, coreCfg, bench, seed, limit, sampleCycles, 0)
}

// SoloRunWindows is SoloRun sampling on committed-instruction window
// boundaries instead of cycle boundaries. Windows align exactly across
// cores for the same benchmark and seed, which is what the §VI-A rule
// derivation needs to compare per-window mappings.
func SoloRunWindows(coreCfg *cpu.Config, bench *workload.Benchmark, seed, limit, windowInstr uint64) SoloResult {
	if windowInstr == 0 {
		panic("amp: SoloRunWindows with zero window")
	}
	return soloRun(nil, coreCfg, bench, seed, limit, 0, windowInstr)
}

func soloRun(factory cpu.EngineFactory, coreCfg *cpu.Config, bench *workload.Benchmark, seed, limit, sampleCycles, sampleInstrs uint64) SoloResult {
	if factory == nil {
		factory = cpu.DetailedFactory
	}
	core, err := factory(coreCfg)
	if err != nil {
		panic(fmt.Sprintf("amp: solo engine for %s: %v", coreCfg.Name, err))
	}
	model := power.NewModel(coreCfg)
	th := NewThread(0, bench, seed, 0)
	core.Bind(th.Gen, &th.Arch)

	var (
		cycle          uint64
		lastAct        cpu.Activity
		lastCache      power.CacheStats
		lastCommit     uint64
		lastClassCnt   [isa.NumClasses]uint64
		nextSampleCyc  = sampleCycles
		nextSampleInst = sampleInstrs
		samples        []SoloSample
		totalEnergy    float64
		lastProgress   uint64
		lastTotal      uint64
	)

	takeSample := func() {
		th.Arch.Sync()
		st := core.Stats()
		act := st.Act
		cs := power.CacheStats{L1I: st.L1I, L1D: st.L1D, L2: st.L2}
		dAct := act.Sub(lastAct)
		dCS := cs.Sub(lastCache)
		e := model.EnergyNJ(dAct, dCS)
		totalEnergy += e
		intervalCycles := dAct.Cycles + dAct.StallCycles
		committed := th.Arch.Committed - lastCommit

		var intN, fpN uint64
		for c := isa.Class(0); c < isa.NumClasses; c++ {
			d := th.Arch.CommittedByClass[c] - lastClassCnt[c]
			if c.IsInt() {
				intN += d
			} else if c.IsFP() {
				fpN += d
			}
		}
		s := SoloSample{EndCycle: cycle, Committed: committed}
		if committed > 0 {
			s.IntPct = 100 * float64(intN) / float64(committed)
			s.FPPct = 100 * float64(fpN) / float64(committed)
		}
		if intervalCycles > 0 {
			s.IPC = float64(committed) / float64(intervalCycles)
			s.Watts = model.Watts(e, intervalCycles)
			if s.Watts > 0 {
				s.IPCPerWatt = s.IPC / s.Watts
			}
		}
		samples = append(samples, s)

		lastAct = act
		lastCache = cs
		lastCommit = th.Arch.Committed
		lastClassCnt = th.Arch.CommittedByClass
	}

	stride := core.Stride()
	for th.Arch.Committed < limit {
		core.Run(cycle, stride)
		cycle += stride
		if sampleCycles > 0 && cycle >= nextSampleCyc {
			takeSample()
			nextSampleCyc += sampleCycles
		}
		if sampleInstrs > 0 && th.Arch.Committed >= nextSampleInst {
			takeSample()
			nextSampleInst += sampleInstrs
		}
		if cycle-lastProgress >= watchdogWindow {
			if th.Arch.Committed == lastTotal {
				panic(fmt.Sprintf("amp: solo run of %s on %s wedged at cycle %d (inflight=%d)",
					bench.Name, coreCfg.Name, cycle, core.InFlight()))
			}
			lastTotal = th.Arch.Committed
			lastProgress = cycle
		}
	}

	// Final partial interval (skipped if empty).
	if th.Arch.Committed > lastCommit || len(samples) == 0 {
		takeSample()
	}

	res := SoloResult{
		Core:      coreCfg.Name,
		Bench:     bench.Name,
		Cycles:    cycle,
		Committed: th.Arch.Committed,
		EnergyNJ:  totalEnergy,
		Samples:   samples,
	}
	if cycle > 0 {
		res.IPC = float64(res.Committed) / float64(cycle)
		res.Watts = model.Watts(totalEnergy, cycle)
		if res.Watts > 0 {
			res.IPCPerWatt = res.IPC / res.Watts
		}
	}
	return res
}
