// Package amp assembles the asymmetric dual-core system of the paper:
// two cpu.Cores of different flavors, two threads, a pluggable
// scheduler that may swap the threads between the cores at run time,
// and per-thread energy attribution for the IPC/Watt metric.
//
// Swapping is modeled the way §VI-C describes it: both pipelines are
// squashed, both cores freeze for a configurable overhead (default
// 1000 cycles, sweepable 100..1,000,000), and the migrated threads
// find cold caches and untrained branch predictors on their new cores
// — the caches and predictor tables belong to the core, not the
// thread.
package amp

import (
	"context"
	"errors"
	"fmt"

	"ampsched/internal/cache"
	"ampsched/internal/cpu"
	"ampsched/internal/power"
	"ampsched/internal/workload"
)

// DefaultSwapOverheadCycles is the reconfiguration cost used in §VII.
const DefaultSwapOverheadCycles = 1000

// MaxOverheadCycles bounds the configurable reconfiguration overheads.
// The paper sweeps swap overheads up to 1M cycles; anything beyond
// this bound is a configuration mistake, not an experiment.
const MaxOverheadCycles = 1 << 30

// ErrWedged is the sentinel matched (via errors.Is) by every run
// abort: a system that stops committing instructions, or one that
// exhausts its cycle budget. The concrete error is a *WedgedError
// carrying the state dump.
var ErrWedged = errors.New("amp: wedged")

// WedgedError reports a run that was aborted by the watchdog (no
// commit progress) or by the cycle budget. It wraps ErrWedged.
type WedgedError struct {
	// Cycle is the global cycle at which the run was aborted.
	Cycle uint64
	// Window is the watchdog period (progress aborts) or the budget
	// (budget aborts) in cycles.
	Window uint64
	// Reason distinguishes "no commit progress" from "cycle budget
	// exhausted".
	Reason string
	// Detail is a free-form state dump (per-thread commit counts,
	// in-flight instructions).
	Detail string
}

// Error implements error.
func (e *WedgedError) Error() string {
	return fmt.Sprintf("amp: %s after %d cycles at cycle %d (%s)",
		e.Reason, e.Window, e.Cycle, e.Detail)
}

// Unwrap makes errors.Is(err, ErrWedged) match.
func (e *WedgedError) Unwrap() error { return ErrWedged }

// ContextSwitchCycles is the 2 ms Linux scheduler quantum expressed in
// cycles at 2 GHz — the decision interval of the HPE and Round Robin
// schemes and of the proposed scheme's forced fairness swap.
const ContextSwitchCycles = 4_000_000

// Thread is one software thread: a workload generator plus the
// architectural state that migrates with it.
type Thread struct {
	ID   int
	Name string
	Gen  *workload.Generator
	Arch cpu.ThreadArch

	// EnergyNJ is the energy attributed to this thread so far: the
	// full (dynamic + static) energy of whichever core it occupied,
	// for as long as it occupied it.
	//ampvet:unit nanojoules
	EnergyNJ float64
}

// NewThread builds a thread running bench. addrBase must differ
// between the two threads of a system.
func NewThread(id int, bench *workload.Benchmark, seed, addrBase uint64) *Thread {
	t := &Thread{}
	t.Reset(id, bench, seed, addrBase)
	return t
}

// Reset re-arms the thread in place for a new run of bench, reusing
// the generator's random source. A reset thread is bit-identical to
// one from NewThread — the contract the pooled pair sweep relies on.
func (t *Thread) Reset(id int, bench *workload.Benchmark, seed, addrBase uint64) {
	t.ID = id
	t.Name = bench.Name
	if t.Gen == nil {
		t.Gen = workload.NewGenerator(bench, seed, addrBase)
	} else {
		t.Gen.Reset(bench, seed, addrBase)
	}
	t.Arch = cpu.ThreadArch{
		CodeBase: addrBase + (1 << 36), // code lives away from data
		CodeSize: bench.EffectiveCodeFootprint(),
	}
	t.EnergyNJ = 0
}

// View is the read-only interface a Scheduler uses to observe the
// system. It is implemented by *System.
type View interface {
	// Cycle returns the current global cycle.
	Cycle() uint64
	// ThreadOnCore returns the thread index bound to the core.
	ThreadOnCore(core int) int
	// CoreOfThread returns the core index the thread is bound to.
	CoreOfThread(thread int) int
	// Arch returns the thread's architectural state, including the
	// committed-per-class counters the hardware monitors expose.
	Arch(thread int) *cpu.ThreadArch
	// ThreadEnergyNJ returns the energy attributed to the thread so
	// far (flushing core-level accounting first).
	ThreadEnergyNJ(thread int) float64
	// LastSwapCycle returns the cycle of the most recent swap (0 if
	// none has happened).
	LastSwapCycle() uint64
	// SwapFailures returns the number of requested swaps the
	// reconfiguration controller dropped (fault injection). A
	// scheduler that requested a swap and sees this counter advance
	// without LastSwapCycle moving must treat the request as lost and
	// retry with backoff rather than assuming the new binding.
	SwapFailures() uint64
	// CoreConfig returns the configuration of a core; schedulers use
	// Name to identify the INT and FP flavors.
	CoreConfig(core int) *cpu.Config
	// L2Stats returns the monotonic last-level-cache counters of a
	// core. Since each core runs exactly one thread, interval deltas
	// attribute cleanly to the occupant — the LLC miss-rate signal
	// the paper's §VII extension folds into the swapping conditions.
	L2Stats(core int) cache.Stats
	// FreqGHz returns the (common) core clock.
	FreqGHz() float64
	// NumCores returns the core count (2 on the dual-core system).
	NumCores() int
	// NumThreads returns the thread count. Threads beyond the core
	// count time-share; ThreadOnCore returns -1 for an idle core and
	// CoreOfThread returns ParkCore for an unbound thread.
	NumThreads() int
	// AffinityMask returns the thread's pool-affinity bit mask: bit p
	// set means the thread may run on cores of pool p. AllPools means
	// unconstrained.
	AffinityMask(thread int) uint64
	// CorePool returns the pool index a core belongs to. Pools group
	// cores of one flavor (e.g. INT vs FP, or big vs small).
	CorePool(core int) int
}

// Scheduler is the original dual-core scheduling interface: Tick
// returns true to request an immediate swap of the two threads.
//
// Deprecated: implement MoveScheduler (Tick returning []Move) instead;
// wrap existing implementations with Legacy. The interface remains
// accepted for one release via the Legacy adapter.
type Scheduler interface {
	Name() string
	// Reset prepares the scheduler for a new run over v.
	Reset(v View)
	// Tick observes the system and returns true to swap now.
	Tick(v View) bool
}

// SchedulerStats are optional bookkeeping counters a scheduler can
// expose (decision points evaluated, swaps it requested, rule
// triggers vetoed by a guard).
type SchedulerStats struct {
	DecisionPoints uint64
	SwapRequests   uint64
	Vetoes         uint64
	// FailedRequests counts swap requests the scheduler observed to be
	// dropped by the reconfiguration controller (fault injection).
	FailedRequests uint64
}

// StatsReporter is implemented by schedulers that count decisions.
type StatsReporter interface {
	SchedStats() SchedulerStats
}

// SwapOutcome is a fault injector's verdict on one swap request.
type SwapOutcome struct {
	// Fail drops the request: no rebinding happens and the system's
	// SwapFailures counter advances.
	Fail bool
	// OverheadFactor multiplies the configured swap overhead for this
	// swap (a delayed reconfiguration). Values <= 0 mean 1.
	OverheadFactor float64
}

// SwapInjector decides the fate of each requested swap. A nil injector
// means every swap succeeds at the configured overhead. Implemented by
// fault.Plan for deterministic fault injection.
type SwapInjector interface {
	SwapOutcome(cycle uint64) SwapOutcome
}

// DefaultWatchdogCycles is the default progress-check period: a system
// that commits nothing for this long is declared wedged.
const DefaultWatchdogCycles = 8_000_000

// Config holds the system-level knobs.
type Config struct {
	// SwapOverheadCycles freezes both cores for this long on a swap.
	// 0 means DefaultSwapOverheadCycles.
	SwapOverheadCycles uint64
	// MorphOverheadCycles freezes both cores for this long on a core
	// morph (defaults to SwapOverheadCycles: both are drain + rewire
	// operations).
	MorphOverheadCycles uint64
	// WatchdogCycles is the progress-check period: Run returns a
	// *WedgedError if no instruction commits for this long. 0 means
	// DefaultWatchdogCycles.
	WatchdogCycles uint64
	// CycleBudget bounds one Run call's total cycles (0 = unlimited).
	// A run that exceeds it returns a *WedgedError with the partial
	// Result, so batch layers can report the pair as degraded instead
	// of spinning forever.
	CycleBudget uint64
	// SwapInjector, when non-nil, is consulted on every swap request
	// (fault injection: failed or delayed reconfigurations).
	//
	// Deprecated: pass WithFaultPlan to NewSystem instead. The field
	// remains functional for one release; a WithFaultPlan option takes
	// precedence when both are set.
	SwapInjector SwapInjector
}

// withDefaults resolves the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.SwapOverheadCycles == 0 {
		c.SwapOverheadCycles = DefaultSwapOverheadCycles
	}
	if c.MorphOverheadCycles == 0 {
		c.MorphOverheadCycles = c.SwapOverheadCycles
	}
	if c.WatchdogCycles == 0 {
		c.WatchdogCycles = DefaultWatchdogCycles
	}
	return c
}

// Validate reports the first nonsensical knob combination. It is
// called on the defaults-resolved config by NewSystem.
func (c *Config) Validate() error {
	if c.SwapOverheadCycles > MaxOverheadCycles {
		return fmt.Errorf("amp: swap overhead %d exceeds the maximum %d cycles",
			c.SwapOverheadCycles, uint64(MaxOverheadCycles))
	}
	if c.MorphOverheadCycles > MaxOverheadCycles {
		return fmt.Errorf("amp: morph overhead %d exceeds the maximum %d cycles",
			c.MorphOverheadCycles, uint64(MaxOverheadCycles))
	}
	if c.CycleBudget > 0 && c.SwapOverheadCycles >= c.CycleBudget {
		return fmt.Errorf("amp: swap overhead %d cycles does not fit the cycle budget %d",
			c.SwapOverheadCycles, c.CycleBudget)
	}
	if c.CycleBudget > 0 && c.MorphOverheadCycles >= c.CycleBudget {
		return fmt.Errorf("amp: morph overhead %d cycles does not fit the cycle budget %d",
			c.MorphOverheadCycles, c.CycleBudget)
	}
	return nil
}

// System is the dual-core AMP.
type System struct {
	engines [2]cpu.Engine
	models  [2]*power.Model
	threads [2]*Thread
	binding [2]int // binding[core] = thread index
	pools   [2]int // pools[core] = flavor pool index
	sched   MoveScheduler
	cfg     Config

	// engineFactory builds the two engines (WithEngine); nil means
	// cpu.DetailedFactory.
	engineFactory cpu.EngineFactory
	// stride is the cycles-per-iteration of the run loop: the largest
	// Stride() of the two engines (1 for detailed cores, preserving
	// the original cycle-interleaved loop bit for bit).
	stride uint64

	cycle         uint64 //ampvet:unit cycles
	swaps         uint64
	swapFailures  uint64
	morphs        uint64
	morphed       bool
	lastSwapCycle uint64
	stallUntil    uint64

	lastAct   [2]cpu.Activity
	lastCache [2]power.CacheStats

	obs Observer       // unified event observer (nil = disabled)
	tel *telemetryHook // set by WithTelemetry, for direct metric access

	timeline *timelineState
}

// NewSystem wires two cores, two threads and a scheduler together.
// Thread i starts on core i. sched may be nil (static assignment).
// Zero-valued Config knobs take their documented defaults; nonsensical
// combinations (see Config.Validate) are rejected with an error.
// Instrumentation (observers, fault plans, telemetry) is attached with
// functional options: WithObserver, WithFaultPlan, WithTelemetry.
func NewSystem(coreCfgs [2]*cpu.Config, threads [2]*Thread, sched MoveScheduler, cfg Config, opts ...Option) (*System, error) {
	if threads[0] == nil || threads[1] == nil {
		return nil, fmt.Errorf("amp: NewSystem needs two threads")
	}
	if coreCfgs[0] == nil || coreCfgs[1] == nil {
		return nil, fmt.Errorf("amp: NewSystem needs two core configurations")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		threads: threads,
		binding: [2]int{0, 1},
		sched:   sched,
		cfg:     cfg,
	}
	// Cores of distinct configurations form distinct pools, in core
	// order: the canonical INT/FP pair becomes pools 0 and 1.
	if coreCfgs[1].Name != coreCfgs[0].Name {
		s.pools[1] = 1
	}
	// Options run before engine construction so WithEngine can select
	// the factory.
	for _, opt := range opts {
		if opt != nil {
			opt(s)
		}
	}
	factory := s.engineFactory
	if factory == nil {
		factory = cpu.DetailedFactory
	}
	s.stride = 1
	for i := 0; i < 2; i++ {
		eng, err := factory(coreCfgs[i])
		if err != nil {
			return nil, fmt.Errorf("amp: engine for core %d: %w", i, err)
		}
		s.engines[i] = eng
		s.models[i] = power.NewModel(coreCfgs[i])
		eng.Bind(threads[i].Gen, &threads[i].Arch)
		if st := eng.Stride(); st > s.stride {
			s.stride = st
		}
	}
	if sched != nil {
		sched.Reset(s)
	}
	return s, nil
}

// Reset re-arms a system built by NewSystem for a fresh run: new
// threads, a new scheduler, a new config. The engines and power models
// are reused, which requires every engine to implement
// cpu.StateResetter — the interval engine does; the detailed core
// deliberately does not (its caches and predictors are persistent
// state that would leak across pooled runs), and Reset refuses it with
// an error so callers fall back to a fresh NewSystem.
//
// A reset system is bit-identical to a freshly constructed one with
// the same construction-time options: observers, telemetry and the
// engine factory persist. The whole Config is replaced — including any
// SwapInjector a WithFaultPlan option installed — and a timeline is
// discarded (re-enable per run).
func (s *System) Reset(threads [2]*Thread, sched MoveScheduler, cfg Config) error {
	if threads[0] == nil || threads[1] == nil {
		return fmt.Errorf("amp: Reset needs two threads")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	var resetters [2]cpu.StateResetter
	for i := 0; i < 2; i++ {
		r, ok := s.engines[i].(cpu.StateResetter)
		if !ok {
			return fmt.Errorf("amp: Reset: %s engine %q keeps persistent microarchitectural state; build a fresh system instead",
				s.engines[i].Fidelity(), s.engines[i].Config().Name)
		}
		resetters[i] = r
	}
	s.engines[0].Unbind()
	s.engines[1].Unbind()
	if s.morphed {
		// Restore the baseline unit sets and power models (the engine
		// Config is the construction-time one; Reconfigure never
		// mutates it).
		for i := 0; i < 2; i++ {
			if err := s.engines[i].Reconfigure(s.engines[i].Config().Units); err != nil {
				return fmt.Errorf("amp: Reset: restore units of core %d: %w", i, err)
			}
			s.models[i] = power.NewModel(s.engines[i].Config())
		}
		s.morphed = false
	}
	resetters[0].ResetState()
	resetters[1].ResetState()
	s.threads = threads
	s.binding = [2]int{0, 1}
	s.sched = sched
	s.cfg = cfg
	s.cycle, s.swaps, s.swapFailures, s.morphs = 0, 0, 0, 0
	s.lastSwapCycle, s.stallUntil = 0, 0
	s.lastAct = [2]cpu.Activity{}
	s.lastCache = [2]power.CacheStats{}
	s.timeline = nil
	s.engines[0].Bind(threads[0].Gen, &threads[0].Arch)
	s.engines[1].Bind(threads[1].Gen, &threads[1].Arch)
	if sched != nil {
		sched.Reset(s)
	}
	return nil
}

// Detach unbinds both engines, flushing their deferred attribution
// (class counts, generator advance) into the currently bound threads.
// Callers that recycle thread objects across runs MUST Detach before
// resetting the threads: an engine left bound holds pointers into the
// thread's generator and ledger, and the flush inside a later
// Reset/Unbind would land in the recycled state instead of the old
// run's. Idempotent; Reset on a detached system skips the flush.
func (s *System) Detach() {
	s.engines[0].Unbind()
	s.engines[1].Unbind()
}

// Poolable reports whether Reset can re-arm this system for a fresh
// run: every engine implements cpu.StateResetter.
func (s *System) Poolable() bool {
	for i := 0; i < 2; i++ {
		if _, ok := s.engines[i].(cpu.StateResetter); !ok {
			return false
		}
	}
	return true
}

// MustSystem is NewSystem panicking on error: for examples, benchmarks
// and tests where the configuration is statically known to be valid.
func MustSystem(coreCfgs [2]*cpu.Config, threads [2]*Thread, sched MoveScheduler, cfg Config, opts ...Option) *System {
	s, err := NewSystem(coreCfgs, threads, sched, cfg, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// --- View implementation -------------------------------------------

// Cycle implements View.
func (s *System) Cycle() uint64 { return s.cycle }

// ThreadOnCore implements View.
func (s *System) ThreadOnCore(core int) int { return s.binding[core] }

// CoreOfThread implements View.
func (s *System) CoreOfThread(thread int) int {
	if s.binding[0] == thread {
		return 0
	}
	return 1
}

// Arch implements View.
func (s *System) Arch(thread int) *cpu.ThreadArch { return &s.threads[thread].Arch }

// ThreadEnergyNJ implements View.
func (s *System) ThreadEnergyNJ(thread int) float64 {
	s.flushEnergy()
	return s.threads[thread].EnergyNJ
}

// LastSwapCycle implements View.
func (s *System) LastSwapCycle() uint64 { return s.lastSwapCycle }

// SwapFailures implements View.
func (s *System) SwapFailures() uint64 { return s.swapFailures }

// CoreConfig implements View.
func (s *System) CoreConfig(core int) *cpu.Config { return s.engines[core].Config() }

// L2Stats implements View.
func (s *System) L2Stats(core int) cache.Stats { return s.engines[core].Stats().L2 }

// FreqGHz implements View.
//
//ampvet:unit cycles_per_second
func (s *System) FreqGHz() float64 { return s.engines[0].Config().FreqGHz }

// NumCores implements View.
func (s *System) NumCores() int { return 2 }

// NumThreads implements View.
func (s *System) NumThreads() int { return 2 }

// AffinityMask implements View: dual-core threads are unconstrained.
func (s *System) AffinityMask(thread int) uint64 { return AllPools }

// CorePool implements View.
func (s *System) CorePool(core int) int { return s.pools[core] }

// --------------------------------------------------------------------

// Swaps returns the number of swaps performed so far.
func (s *System) Swaps() uint64 { return s.swaps }

// Core exposes a core as the concrete cycle-level model, or nil when
// the system runs a different fidelity (tests and power accounting;
// fidelity-agnostic callers should use Engine).
func (s *System) Core(i int) *cpu.Core {
	c, _ := s.engines[i].(*cpu.Core)
	return c
}

// Engine exposes a core's simulation engine.
func (s *System) Engine(i int) cpu.Engine { return s.engines[i] }

// Fidelity describes the system's simulation fidelity: the engines'
// common label, or "a+b" if they somehow differ.
func (s *System) Fidelity() string {
	a, b := s.engines[0].Fidelity(), s.engines[1].Fidelity()
	if a == b {
		return a
	}
	return a + "+" + b
}

// Thread exposes a thread.
func (s *System) Thread(i int) *Thread { return s.threads[i] }

// flushEnergy attributes each core's un-attributed energy to its
// current occupant thread.
func (s *System) flushEnergy() {
	for c := 0; c < 2; c++ {
		st := s.engines[c].Stats()
		act := st.Act
		cs := power.CacheStats{L1I: st.L1I, L1D: st.L1D, L2: st.L2}
		dAct := act.Sub(s.lastAct[c])
		dCS := cs.Sub(s.lastCache[c])
		e := s.models[c].EnergyNJ(dAct, dCS)
		s.threads[s.binding[c]].EnergyNJ += e
		s.lastAct[c] = act
		s.lastCache[c] = cs
	}
}

// requestSwap routes a scheduler's swap request through the fault
// injector (if any): the request may be dropped (SwapFailures
// advances, nothing else happens) or delayed (overhead multiplied).
func (s *System) requestSwap() {
	factor := 1.0
	if s.cfg.SwapInjector != nil {
		out := s.cfg.SwapInjector.SwapOutcome(s.cycle)
		if out.Fail {
			s.swapFailures++
			s.emit(Event{Kind: EventSwapFailed, Cycle: s.cycle})
			return
		}
		if out.OverheadFactor > 0 {
			factor = out.OverheadFactor
		}
	}
	s.swap(factor)
}

// swap exchanges the two threads between the cores, paying the
// configured overhead times factor (a delayed reconfiguration).
func (s *System) swap(factor float64) {
	s.flushEnergy() // attribute up to now under the old binding
	s.engines[0].Unbind()
	s.engines[1].Unbind()
	s.binding[0], s.binding[1] = s.binding[1], s.binding[0]
	s.engines[0].Bind(s.threads[s.binding[0]].Gen, &s.threads[s.binding[0]].Arch)
	s.engines[1].Bind(s.threads[s.binding[1]].Gen, &s.threads[s.binding[1]].Arch)
	s.swaps++
	overhead := s.cfg.SwapOverheadCycles
	if factor != 1 {
		overhead = uint64(float64(overhead) * factor)
	}
	// The swap lands at the end of cycle s.cycle (which already
	// executed), so the frozen window is [cycle+1, cycle+overhead].
	s.stallUntil = s.cycle + 1 + overhead
	// Swaps are dated from their completion: interval-based rules
	// (forced fairness swaps, in particular) measure execution time
	// since the threads actually started running on their new cores,
	// so an overhead larger than the interval cannot re-trigger an
	// immediate swap storm.
	s.lastSwapCycle = s.stallUntil
	s.emit(Event{Kind: EventSwap, Cycle: s.cycle, Overhead: overhead, Delayed: factor != 1})
}

// watchdogWindow is the progress-check period used by solo runs.
const watchdogWindow = DefaultWatchdogCycles

// ThreadResult summarizes one thread after a run.
type ThreadResult struct {
	Name       string
	Committed  uint64  //ampvet:unit instructions
	EnergyNJ   float64 //ampvet:unit nanojoules
	IPC        float64 //ampvet:unit ipc
	Watts      float64 //ampvet:unit watts
	IPCPerWatt float64 //ampvet:unit ipc_per_watt
	IntPct     float64
	FPPct      float64
}

// Result summarizes a completed run.
type Result struct {
	Scheduler string
	Cycles    uint64 //ampvet:unit cycles
	Swaps     uint64
	// FailedSwaps counts requested swaps the injector dropped.
	FailedSwaps uint64
	Morphs      uint64
	Threads     [2]ThreadResult
	Sched       SchedulerStats
}

// stateDump renders the wedge-relevant state for WedgedError.Detail.
func (s *System) stateDump() string {
	return fmt.Sprintf("t0=%d t1=%d inflight=%d/%d",
		s.threads[0].Arch.Committed, s.threads[1].Arch.Committed,
		s.engines[0].InFlight(), s.engines[1].InFlight())
}

// Run advances the system until either thread has committed limit
// instructions, then returns the per-thread metrics. A system that
// stops committing instructions for Config.WatchdogCycles, or runs
// past Config.CycleBudget, aborts with a *WedgedError (matched by
// errors.Is(err, ErrWedged)) alongside the partial Result, so callers
// can report the run as degraded instead of hanging.
//
//ampvet:allow ctxcheck Run is the documented context-free variant of RunContext; Background is its contract
func (s *System) Run(limit uint64) (Result, error) {
	return s.RunContext(context.Background(), limit)
}

// ctxCheckMask throttles the context poll: RunContext selects on
// ctx.Done() once every ctxCheckMask+1 cycles, bounding both the
// cancellation latency (~4k simulated cycles, microseconds of wall
// time) and the hot-loop cost of cancelability.
const ctxCheckMask = 1<<12 - 1

// RunContext is Run with cooperative cancellation: when ctx is
// canceled the run stops at the next check point and returns the
// partial Result with ctx.Err() — a flagged early return, not a wedge
// (errors.Is(err, ErrWedged) is false). A context that can never be
// canceled costs the loop one nil comparison per cycle.
//
// RunContext is one Stepper driven to completion; batch drivers that
// interleave many systems use NewStepper directly.
//
//ampvet:hotpath
func (s *System) RunContext(ctx context.Context, limit uint64) (Result, error) {
	var st Stepper
	st.init(s, ctx, limit)
	for !st.Step(runChunkWindows) {
	}
	return st.Result()
}

// runChunkWindows is the Step batch RunContext uses: large enough that
// the outer loop adds no measurable overhead to a full run.
const runChunkWindows = 1 << 20

// MustRun is Run panicking on a wedge: for examples, benchmarks and
// tests where the workload is statically known to make progress.
func (s *System) MustRun(limit uint64) Result {
	res, err := s.Run(limit)
	if err != nil {
		panic(err)
	}
	return res
}

// result snapshots the per-thread metrics at the current cycle.
func (s *System) result() Result {
	s.flushEnergy()
	res := Result{Cycles: s.cycle, Swaps: s.swaps, FailedSwaps: s.swapFailures, Morphs: s.morphs}
	if s.sched != nil {
		res.Scheduler = s.sched.Name()
		if sr, ok := s.sched.(StatsReporter); ok {
			res.Sched = sr.SchedStats()
		}
	} else {
		res.Scheduler = "static"
	}
	freq := s.FreqGHz()
	seconds := float64(s.cycle) / (freq * 1e9)
	for i := 0; i < 2; i++ {
		th := s.threads[i]
		tr := ThreadResult{
			Name:      th.Name,
			Committed: th.Arch.Committed,
			EnergyNJ:  th.EnergyNJ,
			IntPct:    th.Arch.IntPct(),
			FPPct:     th.Arch.FPPct(),
		}
		if s.cycle > 0 {
			tr.IPC = float64(th.Arch.Committed) / float64(s.cycle)
		}
		if seconds > 0 {
			tr.Watts = th.EnergyNJ * 1e-9 / seconds
		}
		if tr.Watts > 0 {
			tr.IPCPerWatt = tr.IPC / tr.Watts
		}
		res.Threads[i] = tr
	}
	return res
}
