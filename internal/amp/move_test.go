package amp

import "testing"

// boolSwapEvery is the deprecated-interface twin of swapEvery: the
// designated shim regression for the Legacy adapter.
type boolSwapEvery struct {
	period uint64
	next   uint64
	stats  SchedulerStats
}

func (s *boolSwapEvery) Name() string { return "swapEvery" }
func (s *boolSwapEvery) Reset(v View) { s.next = v.Cycle() + s.period }
func (s *boolSwapEvery) Tick(v View) bool {
	if v.Cycle() < s.next {
		return false
	}
	s.next = v.Cycle() + s.period
	s.stats.DecisionPoints++
	s.stats.SwapRequests++
	return true
}
func (s *boolSwapEvery) SchedStats() SchedulerStats { return s.stats }

// TestLegacyAdapterMatchesMoveScheduler pins the migration contract: a
// deprecated bool-Tick scheduler wrapped with Legacy must reproduce the
// MoveScheduler run bit for bit, including the forwarded stats.
func TestLegacyAdapterMatchesMoveScheduler(t *testing.T) {
	run := func(s MoveScheduler) Result {
		sys := MustSystem(coreCfgs(), newPair(t, "gcc", "ammp", 77), s,
			Config{SwapOverheadCycles: 100})
		return sys.MustRun(25_000)
	}
	want := run(&swapEvery{period: 5000})
	got := run(Legacy(&boolSwapEvery{period: 5000}))
	if got.Cycles != want.Cycles || got.Swaps != want.Swaps {
		t.Fatalf("legacy run diverged: got %d cycles/%d swaps, want %d/%d",
			got.Cycles, got.Swaps, want.Cycles, want.Swaps)
	}
	if got.Threads != want.Threads {
		t.Fatalf("legacy thread results diverged:\n got %+v\nwant %+v",
			got.Threads, want.Threads)
	}
	if got.Sched.SwapRequests == 0 {
		t.Fatal("legacy adapter dropped the wrapped scheduler's stats")
	}
	if Legacy(nil) != nil {
		t.Fatal("Legacy(nil) must stay nil")
	}
}

func TestViewTopologyDualCore(t *testing.T) {
	sys := MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 78), nil, Config{})
	if sys.NumCores() != 2 || sys.NumThreads() != 2 {
		t.Fatalf("topology = %dx%d", sys.NumCores(), sys.NumThreads())
	}
	if sys.AffinityMask(0) != AllPools || sys.AffinityMask(1) != AllPools {
		t.Fatal("dual-core threads must be unconstrained")
	}
	if sys.CorePool(0) == sys.CorePool(1) {
		t.Fatal("INT and FP cores must land in distinct pools")
	}
}
