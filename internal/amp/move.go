package amp

// This file is the topology-aware half of the scheduler API: the dual
// core system of the paper is the N=2, M=2 case of an N-core, M-thread
// machine. Schedulers return explicit thread placements ([]Move)
// instead of a bare "swap now" bit, and the View describes the
// topology (core count, thread count, pools, affinity masks) so the
// same policy code drives both this package and internal/manycore.

// ParkCore is the Move.Core value that unbinds a thread from every
// core: the thread keeps its architectural state but stops executing
// (and stops drawing power) until a later Move places it again.
const ParkCore = -1

// AllPools is the affinity mask that allows a thread on every core
// pool.
const AllPools = ^uint64(0)

// Move relocates one thread: after the batch is applied, Thread runs
// on Core (or on no core at all when Core is ParkCore).
type Move struct {
	Thread int
	Core   int
}

// MoveScheduler is the unified scheduling interface. Tick is called
// once per non-stalled stride window and returns the batch of
// relocations to apply now — nil (or empty) to leave the binding
// alone. The returned slice is only read until the next Tick, so
// implementations reuse a scratch slice to stay allocation-free on the
// hot path.
//
// On the dual-core system any returned move that relocates a thread is
// interpreted as the paper's swap (both threads exchange cores and pay
// the reconfiguration overhead).
type MoveScheduler interface {
	Name() string
	// Reset prepares the scheduler for a new run over v.
	Reset(v View)
	// Tick observes the system and returns the moves to apply now.
	Tick(v View) []Move
}

// legacyAdapter lifts a deprecated bool-Tick Scheduler into the Move
// API. It forwards the optional StatsReporter and MorphPolicy
// capabilities unconditionally: a zero SchedulerStats and MorphNone
// are value-identical to the capability being absent.
type legacyAdapter struct {
	inner Scheduler
	buf   [2]Move
}

// Legacy adapts a deprecated amp.Scheduler (Tick reporting "swap now"
// as a bool) to the MoveScheduler interface: a true Tick becomes the
// two moves that exchange the threads of a dual-core system.
//
// It exists for out-of-tree schedulers written against the old
// interface; everything in-tree implements MoveScheduler directly.
func Legacy(s Scheduler) MoveScheduler {
	if s == nil {
		return nil
	}
	return &legacyAdapter{inner: s}
}

// Name implements MoveScheduler.
func (l *legacyAdapter) Name() string { return l.inner.Name() }

// Reset implements MoveScheduler.
func (l *legacyAdapter) Reset(v View) { l.inner.Reset(v) }

// Tick implements MoveScheduler.
//
//ampvet:hotpath
func (l *legacyAdapter) Tick(v View) []Move {
	if !l.inner.Tick(v) {
		return nil
	}
	l.buf[0] = Move{Thread: v.ThreadOnCore(0), Core: 1}
	l.buf[1] = Move{Thread: v.ThreadOnCore(1), Core: 0}
	return l.buf[:]
}

// SchedStats implements StatsReporter by forwarding to the wrapped
// scheduler (zero stats when it does not report).
func (l *legacyAdapter) SchedStats() SchedulerStats {
	if sr, ok := l.inner.(StatsReporter); ok {
		return sr.SchedStats()
	}
	return SchedulerStats{}
}

// MorphTick implements MorphPolicy by forwarding to the wrapped
// scheduler (MorphNone when it has no morph policy).
func (l *legacyAdapter) MorphTick(v View) (MorphAction, int) {
	if mp, ok := l.inner.(MorphPolicy); ok {
		return mp.MorphTick(v)
	}
	return MorphNone, -1
}

var _ MoveScheduler = (*legacyAdapter)(nil)
var _ StatsReporter = (*legacyAdapter)(nil)
var _ MorphPolicy = (*legacyAdapter)(nil)

// movesSwap reports whether a move batch asks the dual-core system to
// exchange its threads: any well-formed move that places a thread on a
// core it does not currently occupy. Parks and out-of-range moves are
// ignored — the 2x2 system always runs both threads.
//
//ampvet:hotpath
func (s *System) movesSwap(mv []Move) bool {
	for i := range mv {
		m := mv[i]
		if m.Thread < 0 || m.Thread > 1 || m.Core < 0 || m.Core > 1 {
			continue
		}
		if s.binding[m.Core] != m.Thread {
			return true
		}
	}
	return false
}
