package amp

import (
	"ampsched/internal/cpu"
	"ampsched/internal/telemetry"
)

// Option customizes a System at construction. Options are the new
// instrumentation surface: where earlier releases assigned hook fields
// on Config (SwapInjector) or reached into the System afterwards,
// callers now pass WithObserver / WithFaultPlan / WithTelemetry to
// NewSystem. The old Config.SwapInjector field still works but is
// deprecated; an option takes precedence when both are set.
type Option func(*System)

// WithObserver installs an event observer. Multiple WithObserver (and
// WithTelemetry) options compose: every observer sees every event.
func WithObserver(o Observer) Option {
	return func(s *System) {
		if o == nil {
			return
		}
		s.obs = MultiObserver(s.obs, o)
	}
}

// WithFaultPlan routes every swap request through the injector
// (typically a *fault.Plan). It replaces the deprecated
// Config.SwapInjector field.
func WithFaultPlan(inj SwapInjector) Option {
	return func(s *System) {
		if inj != nil {
			s.cfg.SwapInjector = inj
		}
	}
}

// WithEngine selects the simulation fidelity: NewSystem builds both
// cores with f instead of the default cpu.DetailedFactory. Use
// interval.Factory() for the calibrated analytic model or
// interval.SampledFactory() for two-tier sampled simulation. A nil f
// keeps the default, so call sites can pass a possibly-unset factory
// unconditionally.
func WithEngine(f cpu.EngineFactory) Option {
	return func(s *System) {
		if f != nil {
			s.engineFactory = f
		}
	}
}

// WithTelemetry publishes the system's metrics and events into t: the
// amp.* counters and histograms (swaps, failures, overhead
// distribution, watchdog resets), per-core cpu.* activity gauges at
// run end, and — when t has sinks — the full event stream. A nil t is
// ignored, keeping the call site unconditional.
func WithTelemetry(t *telemetry.Telemetry) Option {
	return func(s *System) {
		if t == nil {
			return
		}
		h := newTelemetryHook(s, t)
		s.tel = h
		s.obs = MultiObserver(s.obs, h)
	}
}
