package amp

import (
	"ampsched/internal/isa"
)

// TimelineThread is one thread's view of a timeline interval.
type TimelineThread struct {
	Core       int
	Committed  uint64
	IPC        float64
	IPCPerWatt float64
	IntPct     float64
	FPPct      float64
}

// TimelinePoint is one recorded interval of a run: where each thread
// sat, what it achieved, and whether the interval contained a swap or
// a morph. Timelines are the debugging/visualization view of a
// scheduling run — the data behind plots like the paper's per-phase
// discussions.
type TimelinePoint struct {
	EndCycle uint64
	Threads  [2]TimelineThread
	Swaps    uint64 // swaps during the interval
	Morphs   uint64
	Morphed  bool // state at the end of the interval
}

// timelineState is the recorder's incremental bookkeeping.
type timelineState struct {
	interval uint64
	next     uint64
	points   []TimelinePoint

	lastCommit [2]uint64
	lastClass  [2][isa.NumClasses]uint64
	lastEnergy [2]float64
	lastCycle  uint64
	lastSwaps  uint64
	lastMorphs uint64
}

// EnableTimeline turns on per-interval recording. Call before Run.
// Interval is in cycles.
func (s *System) EnableTimeline(interval uint64) {
	if interval == 0 {
		panic("amp: EnableTimeline with zero interval")
	}
	s.timeline = &timelineState{interval: interval, next: s.cycle + interval}
	for t := 0; t < 2; t++ {
		s.threads[t].Arch.Sync()
		s.timeline.lastCommit[t] = s.threads[t].Arch.Committed
		s.timeline.lastClass[t] = s.threads[t].Arch.CommittedByClass
		s.timeline.lastEnergy[t] = s.threads[t].EnergyNJ
	}
	s.timeline.lastCycle = s.cycle
}

// Timeline returns the recorded points (nil unless EnableTimeline was
// called).
func (s *System) Timeline() []TimelinePoint {
	if s.timeline == nil {
		return nil
	}
	return s.timeline.points
}

// recordTimeline closes one interval; called from Run when the
// recorder is armed and the boundary passed.
func (s *System) recordTimeline() {
	tl := s.timeline
	s.flushEnergy()
	cycles := s.cycle - tl.lastCycle
	pt := TimelinePoint{
		EndCycle: s.cycle,
		Swaps:    s.swaps - tl.lastSwaps,
		Morphs:   s.morphs - tl.lastMorphs,
		Morphed:  s.morphed,
	}
	seconds := float64(cycles) / (s.FreqGHz() * 1e9)
	for t := 0; t < 2; t++ {
		th := s.threads[t]
		th.Arch.Sync()
		committed := th.Arch.Committed - tl.lastCommit[t]
		var intN, fpN uint64
		for c := isa.Class(0); c < isa.NumClasses; c++ {
			d := th.Arch.CommittedByClass[c] - tl.lastClass[t][c]
			if c.IsInt() {
				intN += d
			} else if c.IsFP() {
				fpN += d
			}
		}
		tt := TimelineThread{Core: s.CoreOfThread(t), Committed: committed}
		if committed > 0 {
			tt.IntPct = 100 * float64(intN) / float64(committed)
			tt.FPPct = 100 * float64(fpN) / float64(committed)
		}
		if cycles > 0 {
			tt.IPC = float64(committed) / float64(cycles)
			energy := th.EnergyNJ - tl.lastEnergy[t]
			if seconds > 0 && energy > 0 {
				watts := energy * 1e-9 / seconds
				tt.IPCPerWatt = tt.IPC / watts
			}
		}
		pt.Threads[t] = tt
		tl.lastCommit[t] = th.Arch.Committed
		tl.lastClass[t] = th.Arch.CommittedByClass
		tl.lastEnergy[t] = th.EnergyNJ
	}
	tl.lastCycle = s.cycle
	tl.lastSwaps = s.swaps
	tl.lastMorphs = s.morphs
	tl.points = append(tl.points, pt)
	tl.next = s.cycle + tl.interval
}
