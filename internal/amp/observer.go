package amp

import "encoding/binary"

// The unified instrumentation surface of the simulator: every
// noteworthy state change of a System is published as one Event to a
// single Observer installed via WithObserver (or implicitly via
// WithTelemetry). This replaces the scattered per-hook struct fields
// of earlier releases — one interface, one event vocabulary, however
// many consumers MultiObserver fans out to.

// EventKind classifies a system event.
type EventKind uint8

// Event kinds, in rough lifecycle order.
const (
	// EventRunStart fires at the top of Run/RunContext.
	EventRunStart EventKind = iota + 1
	// EventRunEnd fires when a run returns, clean or not.
	EventRunEnd
	// EventSwap fires when a thread swap completes (after the fault
	// injector let it through). Overhead carries the frozen-window
	// length in cycles, including any injected delay factor.
	EventSwap
	// EventSwapFailed fires when the reconfiguration controller drops
	// a requested swap (fault injection).
	EventSwapFailed
	// EventMorphOn / EventMorphOff fire on core morph reconfigurations.
	EventMorphOn
	EventMorphOff
	// EventWatchdogReset fires each time the progress watchdog sees
	// commits advancing and re-arms itself.
	EventWatchdogReset
	// EventWedged fires when a run aborts with a *WedgedError; Reason
	// holds the abort cause.
	EventWedged
	// EventCanceled fires when RunContext returns early because its
	// context was canceled.
	EventCanceled
	// EventReassign fires when a manycore system applies a move batch
	// (the N-core generalization of EventSwap). Overhead carries the
	// per-core frozen-window length.
	EventReassign
)

// String names the kind for sinks and logs.
func (k EventKind) String() string {
	switch k {
	case EventRunStart:
		return "run_start"
	case EventRunEnd:
		return "run_end"
	case EventSwap:
		return "swap"
	case EventSwapFailed:
		return "swap_failed"
	case EventMorphOn:
		return "morph_on"
	case EventMorphOff:
		return "morph_off"
	case EventWatchdogReset:
		return "watchdog_reset"
	case EventWedged:
		return "wedged"
	case EventCanceled:
		return "canceled"
	case EventReassign:
		return "reassign"
	default:
		return "unknown"
	}
}

// Event is one system-level occurrence. It is passed by value and
// contains no pointers, so observing allocates nothing.
type Event struct {
	Kind  EventKind
	Cycle uint64
	// Overhead is the stall the event charged, in cycles (swap and
	// morph events).
	Overhead uint64
	// Delayed marks a swap whose overhead was inflated by the fault
	// injector.
	Delayed bool
	// ThreadOnCore is the binding after the event took effect.
	ThreadOnCore [2]int
	// Reason is the abort cause (wedge events).
	Reason string
}

// Observer receives every Event of a System, in program order, on the
// simulation goroutine. Implementations must be fast and must not call
// back into the System.
type Observer interface {
	Event(e Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Event implements Observer.
func (f ObserverFunc) Event(e Event) { f(e) }

// multiObserver fans events out to several observers in order.
type multiObserver []Observer

func (m multiObserver) Event(e Event) {
	for _, o := range m {
		o.Event(e)
	}
}

// MultiObserver combines observers; nils are dropped. Returns nil when
// nothing remains, a single observer unwrapped, or a fan-out.
func MultiObserver(obs ...Observer) Observer {
	var out multiObserver
	for _, o := range obs {
		if o == nil {
			continue
		}
		if m, ok := o.(multiObserver); ok {
			out = append(out, m...)
			continue
		}
		out = append(out, o)
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// EventRecorder is an Observer that retains the full event stream and
// a canonical byte encoding of it. The byte form is what the
// cross-path identity suite compares: two runs whose recorders hold
// identical trace bytes saw identical event sequences, field for
// field, in identical order.
type EventRecorder struct {
	events []Event
	trace  []byte
}

// Event implements Observer.
func (r *EventRecorder) Event(e Event) {
	r.events = append(r.events, e)
	r.trace = appendEventTrace(r.trace, e)
}

// Events returns the recorded stream in arrival order. The slice
// aliases the recorder's storage; callers must not mutate it.
func (r *EventRecorder) Events() []Event { return r.events }

// TraceBytes returns the canonical encoding of the recorded stream.
// The slice aliases the recorder's storage; callers must not mutate
// it.
func (r *EventRecorder) TraceBytes() []byte { return r.trace }

// appendEventTrace appends e's canonical fixed-layout encoding:
// kind(1) cycle(8) overhead(8) delayed(1) binding(2×8), then the
// reason as a uvarint length prefix and raw bytes. Every field is
// encoded — the format has no freedom, so byte equality is event
// equality.
func appendEventTrace(b []byte, e Event) []byte {
	b = append(b, byte(e.Kind))
	b = binary.LittleEndian.AppendUint64(b, e.Cycle)
	b = binary.LittleEndian.AppendUint64(b, e.Overhead)
	if e.Delayed {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(e.ThreadOnCore[0])))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(e.ThreadOnCore[1])))
	b = binary.AppendUvarint(b, uint64(len(e.Reason)))
	return append(b, e.Reason...)
}

// emit publishes an event if an observer is installed. The nil check
// is the entire disabled-path cost.
//
//ampvet:hotpath
func (s *System) emit(e Event) {
	if s.obs == nil {
		return
	}
	e.ThreadOnCore = s.binding
	s.obs.Event(e)
}
