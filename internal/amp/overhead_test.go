package amp_test

import (
	"testing"

	"ampsched/internal/amp"
	"ampsched/internal/cpu"
	"ampsched/internal/sched"
	"ampsched/internal/workload"
)

// TestNoForcedSwapStorm guards the §VI-C interaction fixed in
// System.swap: when the swap overhead exceeds the forced-fairness
// interval, the elapsed-time-since-swap rule must not re-trigger
// immediately after every stall window. Swaps are dated from stall
// completion, so a same-flavor pair swaps at the fairness rate, not
// once per window.
func TestNoForcedSwapStorm(t *testing.T) {
	cfg := sched.DefaultProposedConfig()
	cfg.ForceInterval = 50_000
	s := sched.NewProposed(cfg)

	// Two INT-heavy threads: only the forced fairness swap can fire.
	t0 := amp.NewThread(0, workload.MustByName("bitcount"), 1, 0)
	t1 := amp.NewThread(1, workload.MustByName("sha"), 2, 1<<40)
	sys := amp.MustSystem(
		[2]*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()},
		[2]*amp.Thread{t0, t1}, s,
		amp.Config{SwapOverheadCycles: 200_000}, // 4x the interval
	)
	res := sys.MustRun(150_000)

	// Each swap costs 200k stall + >=50k execution before the next
	// can fire, so the bound is cycles / 250k (+1 slack).
	maxSwaps := res.Cycles/250_000 + 1
	if res.Swaps > maxSwaps {
		t.Fatalf("swap storm: %d swaps in %d cycles (bound %d)", res.Swaps, res.Cycles, maxSwaps)
	}
	if res.Swaps == 0 {
		t.Fatal("fairness swap never fired for a same-flavor pair")
	}
}

// TestOverheadMonotoneCost checks that, holding the scheduler fixed,
// a larger swap overhead cannot make the same workload finish in
// fewer cycles.
func TestOverheadMonotoneCost(t *testing.T) {
	run := func(overhead uint64) amp.Result {
		t0 := amp.NewThread(0, workload.MustByName("fpstress"), 3, 0)
		t1 := amp.NewThread(1, workload.MustByName("intstress"), 4, 1<<40)
		s := sched.NewProposed(sched.DefaultProposedConfig())
		sys := amp.MustSystem(
			[2]*cpu.Config{cpu.IntCoreConfig(), cpu.FPCoreConfig()},
			[2]*amp.Thread{t0, t1}, s, amp.Config{SwapOverheadCycles: overhead})
		return sys.MustRun(200_000)
	}
	cheap := run(100)
	costly := run(100_000)
	if cheap.Swaps == 0 {
		t.Skip("no swaps; nothing to compare")
	}
	if costly.Cycles < cheap.Cycles {
		t.Fatalf("higher overhead finished faster: %d vs %d cycles", costly.Cycles, cheap.Cycles)
	}
}
