package amp

import (
	"fmt"

	"ampsched/internal/cpu"
	"ampsched/internal/power"
)

// Core morphing support (§III / [5]): the system can reconfigure the
// two cores into a strong+weak pair — the INT core absorbs the FP
// core's strong floating-point datapath — and back. Morphing uses the
// same drain-squash-stall protocol as a thread swap and is requested
// by schedulers implementing MorphPolicy.

// MorphAction is a morph policy's per-tick decision.
type MorphAction int

// Morph actions.
const (
	MorphNone MorphAction = iota
	MorphOn               // reconfigure to strong+weak; strongThread gets the strong core
	MorphOff              // restore the baseline INT/FP asymmetric pair
)

// MorphPolicy is implemented by schedulers that also manage morphing.
// MorphTick is polled once per non-stalled cycle after the regular
// swap Tick; returning MorphOn with a thread index asks the system to
// morph and place that thread on the strong core.
type MorphPolicy interface {
	MorphTick(v View) (MorphAction, int)
}

// Morphed reports whether the system currently runs in the morphed
// (strong+weak) configuration. It is part of the scheduler-visible
// state (exposed alongside View).
func (s *System) Morphed() bool { return s.morphed }

// Morphs returns the number of morph reconfigurations performed (in
// either direction).
func (s *System) Morphs() uint64 { return s.morphs }

// intCoreIndex locates the INT-flavored core by configuration name,
// defaulting to 0.
func (s *System) intCoreIndex() int {
	for c := 0; c < 2; c++ {
		if s.engines[c].Config().Name == "INT" {
			return c
		}
	}
	return 0
}

// morph reconfigures the cores. With on=true, strongThread is placed
// on the (morphed) strong core; with on=false the baseline unit sets
// are restored and the current thread placement is kept.
func (s *System) morph(on bool, strongThread int) {
	s.flushEnergy()
	s.engines[0].Unbind()
	s.engines[1].Unbind()

	intC := s.intCoreIndex()
	fpC := 1 - intC
	var err error
	if on {
		if err = s.engines[intC].Reconfigure(cpu.MorphStrongUnits()); err == nil {
			err = s.engines[fpC].Reconfigure(cpu.MorphWeakUnits())
		}
		s.models[intC] = power.NewModel(cpu.MorphedStrongConfig())
		s.models[fpC] = power.NewModel(cpu.MorphedWeakConfig())
		// Place the favored thread on the strong core.
		if s.binding[intC] != strongThread {
			s.binding[0], s.binding[1] = s.binding[1], s.binding[0]
		}
	} else {
		if err = s.engines[intC].Reconfigure(cpu.IntCoreConfig().Units); err == nil {
			err = s.engines[fpC].Reconfigure(cpu.FPCoreConfig().Units)
		}
		s.models[intC] = power.NewModel(s.engines[intC].Config())
		s.models[fpC] = power.NewModel(s.engines[fpC].Config())
	}
	if err != nil {
		// Reconfigure only fails on invalid unit sets, which are
		// static program data here — treat as a programming error.
		panic(fmt.Sprintf("amp: morph reconfiguration failed: %v", err))
	}

	s.engines[0].Bind(s.threads[s.binding[0]].Gen, &s.threads[s.binding[0]].Arch)
	s.engines[1].Bind(s.threads[s.binding[1]].Gen, &s.threads[s.binding[1]].Arch)
	s.morphed = on
	s.morphs++
	s.stallUntil = s.cycle + 1 + s.cfg.MorphOverheadCycles
	s.lastSwapCycle = s.stallUntil // reconfigurations reset interval timers
	kind := EventMorphOn
	if !on {
		kind = EventMorphOff
	}
	s.emit(Event{Kind: kind, Cycle: s.cycle, Overhead: s.cfg.MorphOverheadCycles})
}
