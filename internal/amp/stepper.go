package amp

import "context"

// Stepper is the resumable core of RunContext: it advances a system
// toward an instruction limit one batch of stride-windows at a time,
// carrying the watchdog, cycle-budget and cancellation bookkeeping
// across calls. Batched sweep drivers interleave many pairs' steppers
// round-robin so one pass shares the phase/calibration tables' cache
// residency across pairs instead of each run streaming them alone;
// RunContext is a single stepper driven to completion.
//
// The loop advances in engine-stride windows: n == 1 for detailed
// cores reproduces the original cycle-interleaved loop exactly (same
// Step/StallCycle sequence, same check points), while analytic engines
// amortize scheduler polling and bookkeeping over their stride.
// Running one core's window before the other's is equivalent to
// interleaving because the cores share no state — their only coupling
// is the scheduler, which acts at window boundaries.
type Stepper struct {
	s     *System
	ctx   context.Context
	done  <-chan struct{}
	limit uint64

	startCycle        uint64 //ampvet:unit cycles
	lastProgressCycle uint64 //ampvet:unit cycles
	lastCommitted     uint64 //ampvet:unit instructions

	finished bool
	res      Result
	err      error
}

// NewStepper starts a resumable run toward limit, emitting the
// run-start event immediately (exactly as RunContext does). Drive it
// with Step until it reports completion, then read Result.
func (s *System) NewStepper(ctx context.Context, limit uint64) *Stepper {
	st := &Stepper{}
	st.init(s, ctx, limit)
	return st
}

// Reset re-arms the stepper against s's current state, exactly as
// NewStepper would a fresh one: batch drivers keep stepper values in
// pooled per-run scratch instead of allocating one per run.
func (st *Stepper) Reset(s *System, ctx context.Context, limit uint64) {
	st.init(s, ctx, limit)
}

// init arms the stepper against s's current state. Split from
// NewStepper so RunContext can keep its stepper on the stack.
func (st *Stepper) init(s *System, ctx context.Context, limit uint64) {
	st.s = s
	st.ctx = ctx
	st.done = ctx.Done()
	st.limit = limit
	st.startCycle = s.cycle
	st.lastProgressCycle = s.cycle
	st.lastCommitted = s.threads[0].Arch.Committed + s.threads[1].Arch.Committed
	st.finished = false
	st.res = Result{}
	st.err = nil
	s.emit(Event{Kind: EventRunStart, Cycle: s.cycle})
}

// Done reports whether the run has completed.
func (st *Stepper) Done() bool { return st.finished }

// System returns the system this stepper drives.
func (st *Stepper) System() *System { return st.s }

// Result returns the run outcome; valid once Step has returned true.
// The error carries the same contract as RunContext: ctx.Err() for a
// cancellation, a *WedgedError for a watchdog or budget abort, nil for
// a completed run.
func (st *Stepper) Result() (Result, error) { return st.res, st.err }

// finish records the terminal outcome and emits the run-end event
// (after the result snapshot, preserving RunContext's event order).
func (st *Stepper) finish(res Result, err error) bool {
	st.res, st.err = res, err
	st.finished = true
	st.s.emit(Event{Kind: EventRunEnd, Cycle: st.s.cycle})
	return true
}

// Step advances the system by at most windows stride-windows and
// reports whether the run completed (limit reached, context canceled,
// or wedged). Calling Step after completion is a no-op returning true.
//
//ampvet:hotpath
func (st *Stepper) Step(windows int) bool {
	if st.finished {
		return true
	}
	// Hoist the per-window bookkeeping into locals so the loop keeps
	// them in registers; the mutable ones are written back on the
	// not-done return path (terminal paths capture them in finish).
	s := st.s
	limit := st.limit
	done := st.done
	startCycle := st.startCycle
	lastProgressCycle := st.lastProgressCycle
	lastCommitted := st.lastCommitted
	for i := 0; i < windows; i++ {
		if s.threads[0].Arch.Committed >= limit || s.threads[1].Arch.Committed >= limit {
			return st.finish(s.result(), nil)
		}
		n := s.stride
		if s.cycle < s.stallUntil {
			if remain := s.stallUntil - s.cycle; remain < n {
				n = remain
			}
			s.engines[0].StallCycles(n)
			s.engines[1].StallCycles(n)
		} else {
			s.engines[0].Run(s.cycle, n)
			s.engines[1].Run(s.cycle, n)
			if s.sched != nil {
				if mv := s.sched.Tick(s); len(mv) != 0 && s.movesSwap(mv) {
					s.requestSwap()
				} else if mp, ok := s.sched.(MorphPolicy); ok {
					switch act, strong := mp.MorphTick(s); {
					case act == MorphOn && !s.morphed:
						s.morph(true, strong)
					case act == MorphOff && s.morphed:
						s.morph(false, -1)
					}
				}
			}
		}
		s.cycle += n
		if s.timeline != nil && s.cycle >= s.timeline.next {
			s.recordTimeline()
		}

		if done != nil && s.cycle&ctxCheckMask < n {
			select {
			case <-done:
				s.emit(Event{Kind: EventCanceled, Cycle: s.cycle})
				return st.finish(s.result(), st.ctx.Err())
			default:
			}
		}
		if s.cfg.CycleBudget > 0 && s.cycle-startCycle >= s.cfg.CycleBudget {
			werr := &WedgedError{
				Cycle: s.cycle, Window: s.cfg.CycleBudget,
				Reason: "cycle budget exhausted", Detail: s.stateDump(),
			}
			s.emit(Event{Kind: EventWedged, Cycle: s.cycle, Reason: werr.Reason})
			return st.finish(s.result(), werr)
		}
		if s.cycle-lastProgressCycle >= s.cfg.WatchdogCycles {
			total := s.threads[0].Arch.Committed + s.threads[1].Arch.Committed
			if total == lastCommitted {
				werr := &WedgedError{
					Cycle: s.cycle, Window: s.cfg.WatchdogCycles,
					Reason: "no commit progress", Detail: s.stateDump(),
				}
				s.emit(Event{Kind: EventWedged, Cycle: s.cycle, Reason: werr.Reason})
				return st.finish(s.result(), werr)
			}
			lastCommitted = total
			lastProgressCycle = s.cycle
			s.emit(Event{Kind: EventWatchdogReset, Cycle: s.cycle})
		}
	}
	st.lastProgressCycle = lastProgressCycle
	st.lastCommitted = lastCommitted
	return false
}
