package amp

import (
	"testing"

	"ampsched/internal/cpu"
)

// scriptedMorph is a test policy: morph on at a given cycle, off at a
// later one, always favoring thread strong.
type scriptedMorph struct {
	onAt, offAt uint64
	strong      int
}

func (p *scriptedMorph) Name() string     { return "scriptedMorph" }
func (p *scriptedMorph) Reset(View)       {}
func (p *scriptedMorph) Tick(View) []Move { return nil }
func (p *scriptedMorph) MorphTick(v View) (MorphAction, int) {
	switch {
	case v.Cycle() >= p.offAt:
		return MorphOff, 0
	case v.Cycle() >= p.onAt:
		return MorphOn, p.strong
	}
	return MorphNone, 0
}

func TestMorphMechanics(t *testing.T) {
	threads := newPair(t, "fpstress", "mcf", 41)
	pol := &scriptedMorph{onAt: 10_000, offAt: 60_000, strong: 0}
	sys := MustSystem(coreCfgs(), threads, pol, Config{SwapOverheadCycles: 500})
	res := sys.MustRun(120_000)

	if res.Morphs < 2 {
		t.Fatalf("expected morph on+off, got %d morphs", res.Morphs)
	}
	// After the final MorphOff the system is unmorphed with baseline
	// units restored.
	if sys.Morphed() {
		t.Fatal("system still morphed at end")
	}
	intC := sys.intCoreIndex()
	if sys.Core(intC).EffectiveUnits() != cpu.IntCoreConfig().Units {
		t.Fatal("INT core units not restored")
	}
	if sys.Core(1-intC).EffectiveUnits() != cpu.FPCoreConfig().Units {
		t.Fatal("FP core units not restored")
	}
}

func TestMorphPlacesStrongThread(t *testing.T) {
	threads := newPair(t, "fpstress", "mcf", 42)
	// Favor thread 1 (starts on the FP core) — the morph must also
	// exchange the binding so thread 1 lands on the strong (INT) core.
	pol := &scriptedMorph{onAt: 10_000, offAt: 1 << 62, strong: 1}
	sys := MustSystem(coreCfgs(), threads, pol, Config{SwapOverheadCycles: 500})
	sys.MustRun(60_000)

	if !sys.Morphed() {
		t.Fatal("system did not morph")
	}
	intC := sys.intCoreIndex()
	if sys.ThreadOnCore(intC) != 1 {
		t.Fatal("strong thread not placed on the strong core")
	}
	if sys.Core(intC).EffectiveUnits() != cpu.MorphStrongUnits() {
		t.Fatal("strong units not installed")
	}
	if sys.Core(1-intC).EffectiveUnits() != cpu.MorphWeakUnits() {
		t.Fatal("weak units not installed")
	}
}

func TestMorphOverheadStalls(t *testing.T) {
	threads := newPair(t, "gcc", "equake", 43)
	pol := &scriptedMorph{onAt: 5_000, offAt: 1 << 62, strong: 0}
	sys := MustSystem(coreCfgs(), threads, pol,
		Config{SwapOverheadCycles: 100, MorphOverheadCycles: 5_000})
	res := sys.MustRun(40_000)
	if res.Morphs == 0 {
		t.Fatal("no morph happened")
	}
	if sys.Core(0).Activity().StallCycles < 5_000 {
		t.Fatalf("morph overhead not charged: %d stall cycles",
			sys.Core(0).Activity().StallCycles)
	}
}

func TestMorphDefaultsToSwapOverhead(t *testing.T) {
	sys := MustSystem(coreCfgs(), newPair(t, "gcc", "equake", 44), nil,
		Config{SwapOverheadCycles: 777})
	if sys.cfg.MorphOverheadCycles != 777 {
		t.Fatalf("morph overhead default = %d", sys.cfg.MorphOverheadCycles)
	}
}

func TestMorphMixedWorkloadGainsThroughput(t *testing.T) {
	// The morphing sweet spot of [5]: a thread that alternates INT
	// and FP phases (mixstress) is fast in only half its phases on
	// either baseline core, but fast in all of them on the morphed
	// strong core. Throughput (IPC) must rise clearly; whether
	// IPC/Watt rises too depends on the added leakage — that tradeoff
	// is exactly what the swap-vs-morph experiment measures.
	run := func(pol MoveScheduler) Result {
		threads := newPair(t, "memstress", "mixstress", 45)
		sys := MustSystem(coreCfgs(), threads, pol, Config{SwapOverheadCycles: 500})
		return sys.MustRun(250_000)
	}
	unmorphed := run(nil)
	morphed := run(&scriptedMorph{onAt: 5_000, offAt: 1 << 62, strong: 1})
	if morphed.Threads[1].IPC <= unmorphed.Threads[1].IPC*1.1 {
		t.Fatalf("strong core did not speed up mixstress: IPC %.3f vs %.3f",
			morphed.Threads[1].IPC, unmorphed.Threads[1].IPC)
	}
}
