package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler captures CPU and heap profiles of one tool invocation.
// Start it at program entry and Stop it on exit; the profiles land in
// <prefix>.cpu.pprof and <prefix>.heap.pprof, ready for `go tool
// pprof`.
type Profiler struct {
	prefix  string
	cpuFile *os.File
}

// StartProfiler begins a CPU profile to prefix+".cpu.pprof".
func StartProfiler(prefix string) (*Profiler, error) {
	f, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: start cpu profile: %w", err)
	}
	return &Profiler{prefix: prefix, cpuFile: f}, nil
}

// Stop ends the CPU profile and writes a heap profile to
// prefix+".heap.pprof". Safe on a nil receiver.
func (p *Profiler) Stop() error {
	if p == nil {
		return nil
	}
	pprof.StopCPUProfile()
	err := p.cpuFile.Close()
	hf, herr := os.Create(p.prefix + ".heap.pprof")
	if herr != nil {
		if err == nil {
			err = herr
		}
		return err
	}
	runtime.GC() // get up-to-date allocation statistics
	if werr := pprof.WriteHeapProfile(hf); werr != nil && err == nil {
		err = werr
	}
	if cerr := hf.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
