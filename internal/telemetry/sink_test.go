package telemetry

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tel := New(NewJSONLSink(&buf))
	tel.Counter("amp.swaps").Add(3)
	tel.Histogram("amp.swap_overhead_cycles").Observe(1000)

	in := []Event{
		{Kind: "swap", Cycle: 42, Thread: -1, Core: -1, Value: 1000},
		{Kind: "window", Cycle: 50, Thread: 0, Core: 1, IntPct: 62.5, FPPct: 10, Sched: "proposed"},
		{Kind: "fault", Cycle: 60, Thread: 1, Core: -1, Detail: "sample_drop", Pair: "gcc+equake"},
	}
	for _, e := range in {
		tel.Emit(e)
	}
	if err := tel.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	sc := bufio.NewScanner(&buf)
	var got []Event
	var summary *summaryLine
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if probe.Kind == "summary" {
			summary = &summaryLine{}
			if err := json.Unmarshal(line, summary); err != nil {
				t.Fatalf("bad summary line: %v", err)
			}
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("bad event line: %v", err)
		}
		got = append(got, e)
	}
	if len(got) != len(in) {
		t.Fatalf("round-tripped %d events, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], in[i])
		}
	}
	if summary == nil {
		t.Fatal("no summary line written")
	}
	if summary.Events != uint64(len(in)) {
		t.Errorf("summary.Events = %d, want %d", summary.Events, len(in))
	}
	found := false
	for _, m := range summary.Metrics {
		if m.Name == "amp.swaps" && m.Kind == "counter" && m.Value == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("summary metrics missing amp.swaps=3: %+v", summary.Metrics)
	}
}

func TestCSVSummary(t *testing.T) {
	var buf bytes.Buffer
	tel := New(NewCSVSummarySink(&buf))
	tel.Counter("sched.decisions").Add(7)
	tel.Gauge("amp.cycles").Set(1234)
	tel.Emit(NewEvent("ignored")) // CSV sink drops events
	if err := tel.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("parse csv: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("csv has %d rows, want header + 2 metrics", len(rows))
	}
	if rows[0][0] != "name" || rows[0][1] != "kind" {
		t.Errorf("bad header: %v", rows[0])
	}
	// Sorted: amp.cycles before sched.decisions.
	if rows[1][0] != "amp.cycles" || rows[1][2] != "1234" {
		t.Errorf("row 1 = %v", rows[1])
	}
	if rows[2][0] != "sched.decisions" || rows[2][2] != "7" {
		t.Errorf("row 2 = %v", rows[2])
	}
}

// errWriter fails after n bytes to exercise sticky error handling.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	w.n -= len(p)
	return len(p), nil
}

func TestJSONLStickyError(t *testing.T) {
	s := NewJSONLSink(&errWriter{n: 10})
	for i := 0; i < 10_000; i++ { // overflow the bufio buffer
		s.Emit(Event{Kind: "swap", Thread: -1, Core: -1})
	}
	if err := s.Close(); err == nil {
		t.Error("Close should surface the write error")
	}
}

func TestHTTPHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("amp.swaps").Add(9)
	reg.Histogram("lat").Observe(128)
	srv := httptest.NewServer(NewMux(reg))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	var body struct {
		Metrics []Metric `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(body.Metrics) != 2 {
		t.Fatalf("metrics = %+v", body.Metrics)
	}
	if body.Metrics[0].Name != "amp.swaps" || body.Metrics[0].Value != 9 {
		t.Errorf("metrics[0] = %+v", body.Metrics[0])
	}

	// The pprof index must be mounted for live inspection.
	pr, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET /debug/pprof/: %v", err)
	}
	pr.Body.Close()
	if pr.StatusCode != 200 {
		t.Errorf("pprof index status = %d", pr.StatusCode)
	}
}
