package telemetry

// Event is one structured record on the telemetry stream. Kind names
// the event class ("swap", "window", "fault", "wedge", "pair", ...);
// the remaining fields are optional context, omitted from the JSONL
// encoding when zero. Thread and Core are always encoded, with -1
// meaning "not applicable", so that index 0 survives the encoding.
type Event struct {
	Kind   string  `json:"kind"`
	Cycle  uint64  `json:"cycle,omitempty"`
	Pair   string  `json:"pair,omitempty"`
	Sched  string  `json:"sched,omitempty"`
	Thread int     `json:"thread"`
	Core   int     `json:"core"`
	Value  float64 `json:"value,omitempty"`
	IntPct float64 `json:"int_pct,omitempty"`
	FPPct  float64 `json:"fp_pct,omitempty"`
	Detail string  `json:"detail,omitempty"`
	// Fidelity labels the simulation engine that produced the event
	// ("detailed", "interval", "sampled"); empty when not applicable.
	Fidelity string `json:"fidelity,omitempty"`
}

// NewEvent returns an Event with the index fields marked not-
// applicable (-1).
func NewEvent(kind string) Event {
	return Event{Kind: kind, Thread: -1, Core: -1}
}

// Sink receives the event stream. Implementations must be safe for
// use from one goroutine at a time; Telemetry.Emit serializes access.
type Sink interface {
	Emit(e Event)
	Close() error
}

// SummarySink is implemented by sinks that want the final registry
// snapshot (Telemetry.Close delivers it just before Close).
type SummarySink interface {
	Sink
	EmitSummary(snapshot []Metric)
}
