package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry snapshot as JSON — the expvar idiom
// (GET returns every published variable) with the registry's typed
// metrics instead of raw expvar.Var strings.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Metrics []Metric `json:"metrics"`
		}{Metrics: reg.Snapshot()})
	})
}

// NewMux returns an http.ServeMux exposing /metrics (the registry
// snapshot) and the standard /debug/pprof endpoints for live CPU and
// heap inspection of a running simulation.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an HTTP server on addr exposing the NewMux endpoints.
// It returns the server (shut it down with Close) and the bound
// address, useful when addr ends in ":0".
func Serve(addr string, reg *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: NewMux(reg)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
