package telemetry

import (
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// Every handle reachable from a nil *Telemetry must be a no-op,
	// never a panic: this is the disabled fast path.
	var tel *Telemetry
	tel.Counter("x").Inc()
	tel.Counter("x").Add(5)
	tel.Gauge("g").Set(3)
	tel.Histogram("h").Observe(9)
	tel.Emit(NewEvent("swap"))
	if tel.Eventing() {
		t.Error("nil telemetry reports Eventing")
	}
	if err := tel.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if got := tel.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	if snap := tel.Registry().Snapshot(); snap != nil {
		t.Errorf("nil registry snapshot = %v", snap)
	}
}

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers, per = 16, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve inside the goroutine too: get-or-create must be
			// race-free and converge on one handle.
			c := reg.Counter("shared")
			for i := 0; i < per; i++ {
				c.Inc()
			}
			reg.Histogram("h").Observe(uint64(per))
			reg.Gauge("g").Set(float64(per))
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := reg.Histogram("h").Count(); got != workers {
		t.Errorf("histogram count = %d, want %d", got, workers)
	}
	if got := reg.Gauge("g").Value(); got != per {
		t.Errorf("gauge = %g, want %d", got, per)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 90 samples around 100 (bucket 7: 64..127) and 10 around 100_000
	// (bucket 17: 65536..131071).
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100_000)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), uint64(90*100+10*100_000); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	// p50 must land in the low bucket: within a factor of 2 of 100.
	if p := h.Quantile(0.50); p < 50 || p > 200 {
		t.Errorf("p50 = %g, want ~100", p)
	}
	// p99 must land in the high bucket: within a factor of 2 of 100k.
	if p := h.Quantile(0.99); p < 50_000 || p > 200_000 {
		t.Errorf("p99 = %g, want ~100000", p)
	}
	if p := h.Quantile(0); p <= 0 {
		t.Errorf("p0 = %g, want positive (lowest bucket)", p)
	}
	// Quantiles are monotone in q.
	last := 0.0
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 1} {
		p := h.Quantile(q)
		if p < last {
			t.Errorf("Quantile(%g) = %g < previous %g", q, p, last)
		}
		last = p
	}
}

func TestHistogramZero(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Observe(0)
	if h.Quantile(0.5) != 0 {
		t.Errorf("all-zero histogram p50 = %g", h.Quantile(0.5))
	}
}

func TestSnapshotSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.count").Inc()
	reg.Gauge("a.gauge").Set(2)
	reg.Histogram("c.hist").Observe(7)
	snap := reg.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snap))
	}
	wantNames := []string{"a.gauge", "b.count", "c.hist"}
	wantKinds := []string{"gauge", "counter", "histogram"}
	for i, m := range snap {
		if m.Name != wantNames[i] || m.Kind != wantKinds[i] {
			t.Errorf("snapshot[%d] = %s/%s, want %s/%s", i, m.Name, m.Kind, wantNames[i], wantKinds[i])
		}
	}
	if snap[1].Value != 1 {
		t.Errorf("counter value = %g", snap[1].Value)
	}
	if snap[2].Count != 1 || snap[2].Mean != 7 {
		t.Errorf("histogram snapshot = %+v", snap[2])
	}
}
