package telemetry

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// JSONLSink writes one JSON object per line: every event as it is
// emitted, then (via EmitSummary) a final {"kind":"summary"} line
// carrying the registry snapshot. Errors are sticky and reported by
// Close, so the hot emit path never has to check them.
type JSONLSink struct {
	w     *bufio.Writer
	c     io.Closer // underlying closer, if any
	enc   *json.Encoder
	err   error
	lines uint64
}

// NewJSONLSink wraps w. If w is also an io.Closer it is closed by
// Close.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	s := &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Sink.
func (s *JSONLSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	if err := s.enc.Encode(e); err != nil {
		s.err = err
		return
	}
	s.lines++
}

// summaryLine is the final JSONL record.
type summaryLine struct {
	Kind    string   `json:"kind"`
	Events  uint64   `json:"events"`
	Metrics []Metric `json:"metrics"`
}

// EmitSummary implements SummarySink.
func (s *JSONLSink) EmitSummary(snapshot []Metric) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(summaryLine{Kind: "summary", Events: s.lines, Metrics: snapshot})
}

// Lines returns the number of event lines written so far.
func (s *JSONLSink) Lines() uint64 { return s.lines }

// Close flushes and reports the first write error.
func (s *JSONLSink) Close() error {
	ferr := s.w.Flush()
	if s.err == nil {
		s.err = ferr
	}
	if s.c != nil {
		if cerr := s.c.Close(); s.err == nil {
			s.err = cerr
		}
	}
	return s.err
}

var _ SummarySink = (*JSONLSink)(nil)

// CSVSummarySink ignores the event stream and writes only the final
// registry snapshot as CSV (one metric per row) — the cheap "give me
// the numbers in a spreadsheet" sink.
type CSVSummarySink struct {
	w   io.Writer
	c   io.Closer
	err error
}

// NewCSVSummarySink wraps w. If w is also an io.Closer it is closed
// by Close.
func NewCSVSummarySink(w io.Writer) *CSVSummarySink {
	s := &CSVSummarySink{w: w}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Sink (events are not recorded).
func (s *CSVSummarySink) Emit(Event) {}

// EmitSummary implements SummarySink.
func (s *CSVSummarySink) EmitSummary(snapshot []Metric) {
	if s.err != nil {
		return
	}
	cw := csv.NewWriter(s.w)
	s.err = cw.Write([]string{"name", "kind", "value", "count", "sum", "mean", "p50", "p90", "p99"})
	for _, m := range snapshot {
		if s.err != nil {
			break
		}
		s.err = cw.Write([]string{
			m.Name, m.Kind,
			fmtFloat(m.Value), fmt.Sprint(m.Count), fmtFloat(m.Sum),
			fmtFloat(m.Mean), fmtFloat(m.P50), fmtFloat(m.P90), fmtFloat(m.P99),
		})
	}
	cw.Flush()
	if s.err == nil {
		s.err = cw.Error()
	}
}

func fmtFloat(v float64) string { return fmt.Sprintf("%g", v) }

// Close reports the first write error.
func (s *CSVSummarySink) Close() error {
	if s.c != nil {
		if cerr := s.c.Close(); s.err == nil {
			s.err = cerr
		}
	}
	return s.err
}

var _ SummarySink = (*CSVSummarySink)(nil)
