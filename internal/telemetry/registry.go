package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. All methods are
// safe for concurrent use and for a nil receiver (no-op), so disabled
// telemetry costs one nil check and zero allocations.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//ampvet:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
//
//ampvet:hotpath
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float64 metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
//
//ampvet:hotpath
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the bucket count of a Histogram: bucket i holds the
// values whose bit length is i, i.e. geometric power-of-two buckets
// covering the full uint64 range.
const histBuckets = 65

// Histogram accumulates a distribution of uint64 samples (cycle
// counts, latencies, sizes) in power-of-two buckets. Quantiles are
// estimated at the geometric midpoint of the containing bucket, which
// is exact to within a factor of sqrt(2) — plenty for order-of-
// magnitude latency tracking at zero allocation cost.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one sample.
//
//ampvet:hotpath
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bitLen(v)].Add(1)
}

func bitLen(v uint64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket
// counts: the geometric midpoint of the bucket containing the q-th
// sample. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == 0 {
				return 0 // the zero bucket
			}
			lo := float64(uint64(1) << (i - 1)) // 2^(i-1) .. 2^i - 1
			return lo * math.Sqrt2
		}
	}
	return 0
}

// Registry is a name-keyed collection of metrics. Handles are created
// on first resolution and shared thereafter; resolution takes a lock,
// so instrumented code should resolve once and hold the handle. All
// methods are safe on a nil receiver (they return nil no-op handles).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Metric is one registry entry rendered for export. Counter and gauge
// entries carry Value; histogram entries carry Count/Sum/Mean and the
// three standard quantiles.
type Metric struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // "counter", "gauge" or "histogram"
	Value float64 `json:"value,omitempty"`
	Count uint64  `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P90   float64 `json:"p90,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// Snapshot renders every metric, sorted by name (counters, then
// gauges, then histograms for equal names — names should be unique
// across kinds). Safe on a nil receiver (returns nil).
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.histograms {
		out = append(out, Metric{
			Name: name, Kind: "histogram",
			Count: h.Count(), Sum: float64(h.Sum()), Mean: h.Mean(),
			P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
