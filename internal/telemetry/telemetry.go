// Package telemetry is the observability spine of the simulator: a
// concurrency-safe metrics registry (counters, gauges, histograms)
// plus a structured event stream with pluggable sinks (JSONL, CSV
// summary, an expvar-style HTTP endpoint).
//
// The package is deliberately a leaf — it imports nothing from the
// simulator — so every layer (cpu, amp, sched, fault, experiments) can
// publish into one shared *Telemetry without import cycles.
//
// Everything is nil-tolerant: a nil *Telemetry, a nil *Registry and
// nil metric handles are valid no-op receivers. Instrumented code
// therefore resolves its handles once ("amp.swaps", ...) and calls
// Inc/Observe unconditionally; with telemetry disabled the calls are
// nil-check no-ops and the hot path stays allocation-free.
package telemetry

import "sync"

// Telemetry bundles a metrics registry with an optional event sink.
// The zero value is unusable; build one with New. A nil *Telemetry is
// a valid "disabled" instance: every method no-ops and every handle it
// returns is a no-op.
type Telemetry struct {
	reg *Registry

	mu    sync.Mutex
	sinks []Sink
}

// New returns an enabled Telemetry publishing events to the given
// sinks (none is fine: metrics only).
func New(sinks ...Sink) *Telemetry {
	t := &Telemetry{reg: NewRegistry()}
	for _, s := range sinks {
		if s != nil {
			t.sinks = append(t.sinks, s)
		}
	}
	return t
}

// Registry returns the metrics registry (nil when t is nil).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Counter resolves a counter handle by name. Safe on a nil receiver.
func (t *Telemetry) Counter(name string) *Counter { return t.Registry().Counter(name) }

// Gauge resolves a gauge handle by name. Safe on a nil receiver.
func (t *Telemetry) Gauge(name string) *Gauge { return t.Registry().Gauge(name) }

// Histogram resolves a histogram handle by name. Safe on a nil
// receiver.
func (t *Telemetry) Histogram(name string) *Histogram { return t.Registry().Histogram(name) }

// Eventing reports whether Emit delivers anywhere. Callers that must
// build an Event cheaply can skip construction entirely when false.
//
//ampvet:hotpath
func (t *Telemetry) Eventing() bool {
	return t != nil && len(t.sinks) > 0
}

// Emit publishes one event to every sink. Safe on a nil receiver.
//
//ampvet:hotpath
func (t *Telemetry) Emit(e Event) {
	if t == nil || len(t.sinks) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.sinks {
		s.Emit(e)
	}
}

// Close emits a final "summary" event carrying the registry snapshot,
// then closes every sink, returning the first error.
//
//ampvet:allow lockcheck t.mu must be held across sink teardown so a concurrent Emit can never write to a closed sink
func (t *Telemetry) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var first error
	for _, s := range t.sinks {
		if ss, ok := s.(SummarySink); ok {
			ss.EmitSummary(t.reg.Snapshot())
		}
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.sinks = nil
	return first
}
