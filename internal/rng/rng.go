// Package rng provides a small, fast, deterministic pseudo-random
// number generator used throughout the simulator.
//
// Every stochastic component of the simulator (workload synthesis,
// random pair selection, profiling sampling) draws from an explicitly
// seeded *rng.Source so that whole-system runs are bit-reproducible.
// The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a
// 64-bit state advanced by a Weyl constant and finalized with a
// variant of the MurmurHash3 finalizer. It is not cryptographically
// secure; it is statistically strong enough for workload synthesis and
// extremely cheap (three multiplies and shifts per value).
package rng

import "math"

// Source is a deterministic SplitMix64 pseudo-random generator.
// The zero value is a valid generator seeded with 0.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Two Sources with the same
// seed produce identical streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Seed resets the generator to the given seed.
func (s *Source) Seed(seed uint64) { s.state = seed }

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a value uniformly distributed in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits / 2^53.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a value uniformly distributed in [0, n). It panics if
// n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.Uint64() % uint64(n))
}

// Uint64n returns a value uniformly distributed in [0, n). It panics
// if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	return s.Uint64() % n
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Geometric returns a sample from a geometric distribution with the
// given mean (mean >= 1). The returned value is always >= 1. This is
// used for dependency-distance synthesis: a producer "mean" dynamic
// instructions back in program order.
//
// The sample is drawn by inverse transform — n = 1 + floor(ln(U) /
// ln(1-p)) with p = 1/mean — which costs one uniform draw and one log
// instead of O(mean) Bernoulli trials.
func (s *Source) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1.0 / mean
	u := s.Float64()
	if u <= 0 {
		u = 1e-18 // Float64 is in [0,1); guard the log anyway
	}
	n := 1 + int(math.Log(u)/math.Log(1-p))
	if n < 1 {
		n = 1
	}
	if n > 1<<20 {
		n = 1 << 20
	}
	return n
}

// Split returns a new Source whose stream is independent of (but
// deterministically derived from) the parent's current state. Use it
// to give each subcomponent its own stream without correlated draws.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64()}
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
