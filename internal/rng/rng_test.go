package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(123)
	b := New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 draws collided between different seeds", same)
	}
}

func TestSeedResets(t *testing.T) {
	s := New(7)
	first := s.Uint64()
	s.Uint64()
	s.Seed(7)
	if got := s.Uint64(); got != first {
		t.Fatalf("Seed did not reset stream: got %d want %d", got, first)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %g too far from 0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(13)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("value %d never drawn in 10000 tries", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestBoolProbability(t *testing.T) {
	s := New(15)
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			count++
		}
	}
	p := float64(count) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) fired at rate %g", p)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(17)
	for _, mean := range []float64{2, 5, 12} {
		sum := 0.0
		const n = 50000
		for i := 0; i < n; i++ {
			v := s.Geometric(mean)
			if v < 1 {
				t.Fatalf("Geometric returned %d < 1", v)
			}
			sum += float64(v)
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Fatalf("Geometric(%g) sample mean %g", mean, got)
		}
	}
}

func TestGeometricDegenerate(t *testing.T) {
	s := New(19)
	for i := 0; i < 100; i++ {
		if v := s.Geometric(0.5); v != 1 {
			t.Fatalf("Geometric(0.5) = %d, want 1", v)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(21)
	child := parent.Split()
	// The child stream should not replicate the parent's next values.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 collisions between parent and split child", same)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(23)
	for _, n := range []int{1, 2, 5, 17, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestQuickUint64nInRange(t *testing.T) {
	s := New(29)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return s.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSameSeedSameStream(t *testing.T) {
	f := func(seed uint64, draws uint8) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < int(draws); i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
