# ampsched — build, test and reproduce targets.

GO ?= go

.PHONY: all build vet test test-short bench experiments experiments-paper fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (minutes).
experiments:
	$(GO) run ./cmd/ampexperiments -v

# Publication-scale parameters (hours of CPU).
experiments-paper:
	$(GO) run ./cmd/ampexperiments -paper -v

fuzz:
	$(GO) test ./internal/trace -fuzz FuzzRead -fuzztime 30s

clean:
	$(GO) clean ./...
