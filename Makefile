# ampsched — build, test and reproduce targets.

GO ?= go

.PHONY: all build vet ampvet analyze lint lint-bench test test-short test-race bench bench-snapshot bench-core bench-check bench-core-check bench-server bench-server-check bench-manycore bench-manycore-check bench-fleet bench-fleet-check serve-smoke chaos-smoke fleet-smoke nxm-smoke experiments experiments-paper paperscale fuzz fuzz-fault fuzz-wal clean

all: build lint test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific analyzers (internal/analysis via cmd/ampvet):
# determinism, hotpathalloc, deprecatedapi, obserrcheck, plus the
# dataflow-aware lockcheck, unitcheck and ctxcheck. Findings are cached
# per package content hash; use -nocache to force a full re-analysis.
ampvet:
	$(GO) run ./cmd/ampvet ./...

# Machine-readable findings for CI annotation / dashboards.
analyze:
	$(GO) run ./cmd/ampvet -json ./...

# Static gate: vet, gofmt (fails listing any unformatted file), then
# the ampvet suite.
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) run ./cmd/ampvet ./...

# Time the analyzer suite over ./... cold (findings cache disabled) and
# warm (second cached run) — the numbers recorded in EXPERIMENTS.md.
lint-bench:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/ampvet" ./cmd/ampvet; \
	t0=$$(date +%s%N); "$$tmp/ampvet" -nocache ./... >/dev/null; t1=$$(date +%s%N); \
	echo "ampvet cold (no cache):      $$(( (t1 - t0) / 1000000 )) ms"; \
	"$$tmp/ampvet" -cachedir "$$tmp/cache" ./... >/dev/null; \
	t0=$$(date +%s%N); "$$tmp/ampvet" -cachedir "$$tmp/cache" ./... >/dev/null; t1=$$(date +%s%N); \
	echo "ampvet warm (cache all-hit): $$(( (t1 - t0) / 1000000 )) ms"

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detect the short suite (exercises the parallel pair sweep).
test-race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable snapshot of the hot-path benchmarks (the ones the
# telemetry work must not regress), written to BENCH_telemetry.json.
bench-snapshot:
	$(GO) test -run NONE -bench 'BenchmarkCoreSimulation|BenchmarkDualCoreSystem|BenchmarkWorkloadGenerator' -benchmem . \
		| $(GO) run ./cmd/benchsnap -o BENCH_telemetry.json

# Snapshot the simulation-engine benchmarks (detailed vs interval vs
# sampled hot loops) into the committed baseline BENCH_core.json.
bench-core:
	$(GO) test -run NONE -bench 'BenchmarkEngine' -benchmem . \
		| $(GO) run ./cmd/benchsnap -o BENCH_core.json

# Regression gate: rerun the engine benchmarks and compare against the
# committed baseline (fails past +10% ns/op or any allocs/op increase).
bench-check:
	$(GO) test -run NONE -bench 'BenchmarkEngine' -benchmem . \
		| $(GO) run ./cmd/benchsnap -compare BENCH_core.json

# CI form of the engine gate: the interval-fidelity rows' allocs/op
# counts hard-fail (the batched/zero-alloc sweep guarantees live
# there), while ns/op drift and the other fidelities stay advisory —
# CI machines are too noisy for a hard ns gate.
bench-core-check:
	$(GO) test -run NONE -bench 'BenchmarkEngine' -benchmem . \
		| $(GO) run ./cmd/benchsnap -compare BENCH_core.json -hard-allocs 'Interval'

# Snapshot the service hot-path benchmarks (cache-key hashing, warm
# cache lookups, queue round trip) into BENCH_server.json.
bench-server:
	$(GO) test -run NONE -bench 'BenchmarkServerCache|BenchmarkQueueSubmitComplete' -benchmem ./internal/server ./internal/jobqueue \
		| $(GO) run ./cmd/benchsnap -o BENCH_server.json

# Regression gate for the service hot paths against the committed
# baseline (fails past +10% ns/op or any allocs/op increase).
bench-server-check:
	$(GO) test -run NONE -bench 'BenchmarkServerCache|BenchmarkQueueSubmitComplete' -benchmem ./internal/server ./internal/jobqueue \
		| $(GO) run ./cmd/benchsnap -compare BENCH_server.json

# Snapshot the N×M scheduler decision-loop benchmarks (O(1) off-quantum
# gate, full-epoch cost at 64x512 and 256x2048) into BENCH_manycore.json.
bench-manycore:
	$(GO) test -run NONE -bench 'BenchmarkManycore' -benchmem ./internal/manycore \
		| $(GO) run ./cmd/benchsnap -o BENCH_manycore.json

# Regression gate for the N×M decision loop against the committed
# baseline. The off-quantum gate rows sit near timer granularity
# (~2 ns/op), so the ns gate is widened to 25%; that still catches any
# complexity regression (orders of magnitude) and allocs/op increases
# are rejected unconditionally.
bench-manycore-check:
	$(GO) test -run NONE -bench 'BenchmarkManycore' -benchmem ./internal/manycore \
		| $(GO) run ./cmd/benchsnap -compare BENCH_manycore.json -threshold 25

# Snapshot the cluster hot-path benchmarks (ring lookup, job routing
# key, two-node forward round trip) into BENCH_fleet.json.
bench-fleet:
	$(GO) test -run NONE -bench 'BenchmarkCluster' -benchmem ./internal/cluster \
		| $(GO) run ./cmd/benchsnap -o BENCH_fleet.json

# Regression gate for the cluster hot paths against the committed
# baseline. The peer result fetch goes through real loopback HTTP, so
# the ns gate is widened to 25%; allocs/op still hard-fails.
bench-fleet-check:
	$(GO) test -run NONE -bench 'BenchmarkCluster' -benchmem ./internal/cluster \
		| $(GO) run ./cmd/benchsnap -compare BENCH_fleet.json -threshold 25

# End-to-end service smoke: boot ampserve on an ephemeral port, drive
# it with amploadgen (4 concurrent sweep jobs exercising the cache),
# then SIGTERM it and require a clean drain (exit 0).
serve-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/" ./cmd/ampserve ./cmd/amploadgen; \
	"$$tmp/ampserve" -addr 127.0.0.1:0 -addrfile "$$tmp/addr" \
		-limit 200000 -contextswitch 20000 -profilelimit 100000 \
		-fidelity interval -cachedir "$$tmp/cache" >"$$tmp/server.log" 2>&1 & \
	srv=$$!; \
	bound=0; for i in $$(seq 1 100); do [ -f "$$tmp/addr" ] && { bound=1; break; }; sleep 0.1; done; \
	if [ $$bound -ne 1 ]; then echo "ampserve never bound:"; cat "$$tmp/server.log"; kill $$srv 2>/dev/null; exit 1; fi; \
	set +e; \
	"$$tmp/amploadgen" -addr "$$(cat $$tmp/addr)" -jobs 12 -concurrency 4 -pairs 2 -distinct 3; \
	lg=$$?; \
	kill -TERM $$srv; wait $$srv; srvexit=$$?; \
	echo "amploadgen exit=$$lg ampserve exit=$$srvexit"; \
	if [ $$lg -ne 0 ] || [ $$srvexit -ne 0 ]; then cat "$$tmp/server.log"; exit 1; fi

# Crash-safety gate: ampchaos boots ampserve under service fault
# injection, SIGKILLs it mid-load, restarts it on the same journal and
# cache, and requires every acknowledged job to resolve with results
# byte-identical to a pristine fault-free run (see cmd/ampchaos).
chaos-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/" ./cmd/ampserve ./cmd/ampchaos; \
	"$$tmp/ampchaos" -ampserve "$$tmp/ampserve" -workdir "$$tmp/work"

# Distributed-mode gate: ampfleet boots a 3-node fleet, sprays skewed
# load across it (forwarding + cross-node singleflight must fire),
# SIGKILLs one node mid-run, and requires the survivors to re-route,
# drain cleanly, and match a single-node oracle byte-for-byte (see
# cmd/ampfleet).
fleet-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/" ./cmd/ampserve ./cmd/ampfleet; \
	"$$tmp/ampfleet" -ampserve "$$tmp/ampserve" -workdir "$$tmp/work"

# N×M scaling smoke: the nxm sweep at 64x512 and 256x2048 under the
# sampled engine must complete (~30s) — guards the incremental decision
# loop and the big topologies against wedging or blowing up in cost.
nxm-smoke:
	$(GO) run ./cmd/ampexperiments -run nxm -fidelity sampled \
		-nxmcores 64,256 -nxmcycles 100000 -nxmquantum 50000 -v

# Regenerate every table and figure of the paper (minutes).
experiments:
	$(GO) run ./cmd/ampexperiments -v

# Publication-scale parameters (hours of CPU).
experiments-paper:
	$(GO) run ./cmd/ampexperiments -paper -v

# Fig. 7 at the paper's actual scale (80 pairs x 500M instructions) in
# minutes, via the two-tier sampled engine.
paperscale:
	$(GO) run ./cmd/ampexperiments -run fig7full -fidelity sampled -v

fuzz:
	$(GO) test ./internal/trace -fuzz FuzzRead -fuzztime 30s

# Fuzz the fault plan's determinism invariant (same seed, same faults).
fuzz-fault:
	$(GO) test ./internal/fault -fuzz FuzzFaultPlan -fuzztime 30s

# Fuzz journal replay: arbitrary segment bytes must never panic, and
# every record replay yields must round-trip through appendFrame.
fuzz-wal:
	$(GO) test ./internal/wal -fuzz FuzzReplayBody -fuzztime 30s

clean:
	$(GO) clean ./...
