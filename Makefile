# ampsched — build, test and reproduce targets.

GO ?= go

.PHONY: all build vet test test-short test-race bench experiments experiments-paper fuzz fuzz-fault clean

all: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detect the short suite (exercises the parallel pair sweep).
test-race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (minutes).
experiments:
	$(GO) run ./cmd/ampexperiments -v

# Publication-scale parameters (hours of CPU).
experiments-paper:
	$(GO) run ./cmd/ampexperiments -paper -v

fuzz:
	$(GO) test ./internal/trace -fuzz FuzzRead -fuzztime 30s

# Fuzz the fault plan's determinism invariant (same seed, same faults).
fuzz-fault:
	$(GO) test ./internal/fault -fuzz FuzzFaultPlan -fuzztime 30s

clean:
	$(GO) clean ./...
